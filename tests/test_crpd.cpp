/// \file test_crpd.cpp
/// \brief CRPD analysis tests: UCB on hand-built traces (loops reuse,
///        straight-line code does not), ECB sets, the intersection bound,
///        and the empirical soundness property -- the CRPD bound dominates
///        the measured preemption cost for random preemption points.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/crpd.hpp"
#include "cache/program.hpp"
#include "cache/wcet.hpp"

namespace {

using catsched::cache::CacheConfig;
using catsched::cache::CacheSim;
using catsched::cache::compute_ecb_sets;
using catsched::cache::compute_ucb;
using catsched::cache::crpd_bound_cycles;
using catsched::cache::crpd_bound_seconds;
using catsched::cache::make_looped_program;
using catsched::cache::make_sequential_program;
using catsched::cache::Program;

CacheConfig cfg(std::size_t lines, std::size_t assoc) {
  CacheConfig c;
  c.num_lines = lines;
  c.associativity = assoc;
  return c;
}

TEST(Ucb, StraightLineCodeHasNoUsefulBlocks) {
  // Lines touched once are never useful: evicting them costs nothing.
  const Program p = make_sequential_program("straight", 10, 1);
  const auto ucb = compute_ucb(p, cfg(16, 1));
  EXPECT_EQ(ucb.max_useful, 0u);
}

TEST(Ucb, LoopBodyIsUsefulWhileLooping) {
  // 4-line loop body iterated 5 times in a 16-line cache: during the loop,
  // all 4 body lines are resident and will be reused.
  const Program p = make_looped_program("loop", 8, 2, 4, 5);
  const auto ucb = compute_ucb(p, cfg(16, 1));
  EXPECT_EQ(ucb.max_useful, 4u);
  // After the final iteration nothing is reused.
  EXPECT_EQ(ucb.per_point.back(), 0u);
}

TEST(Ucb, UsefulnessIsCappedByCacheCapacityNotBodySize) {
  // Loop body (8 lines) twice the direct-mapped cache (4 sets): lines
  // evict each other every iteration, yet every *resident* line is still
  // re-accessed later -- so UCB equals the cache capacity, not the body
  // size. (Evicting any resident line really does cost a reload.)
  const Program p = make_looped_program("thrash", 8, 0, 8, 4);
  const auto ucb = compute_ucb(p, cfg(4, 1));
  EXPECT_EQ(ucb.max_useful, 4u);
}

TEST(Ecb, CollectsTouchedSetsOnly) {
  const Program p = make_sequential_program("seq", 4, 1, /*base=*/8);
  // Lines 8..11 in an 8-set cache touch sets 0..3.
  const auto ecb = compute_ecb_sets(p, cfg(8, 1));
  EXPECT_EQ(ecb, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(CrpdBound, DisjointSetsCostNothing) {
  // Victim loop in sets 0..3, preemptor in sets 4..7: no conflict.
  const Program victim = make_looped_program("v", 4, 0, 4, 6, /*base=*/0);
  const Program preemptor = make_sequential_program("p", 4, 1, /*base=*/4);
  const auto c = cfg(8, 1);
  const auto ucb = compute_ucb(victim, c);
  EXPECT_GT(ucb.max_useful, 0u);
  EXPECT_EQ(crpd_bound_cycles(ucb, compute_ecb_sets(preemptor, c), c), 0u);
}

TEST(CrpdBound, FullOverlapChargesEveryUsefulLine) {
  const Program victim = make_looped_program("v", 4, 0, 4, 6, /*base=*/0);
  const Program preemptor = make_sequential_program("p", 8, 1, /*base=*/0);
  const auto c = cfg(8, 1);
  const auto ucb = compute_ucb(victim, c);
  const auto bound =
      crpd_bound_cycles(ucb, compute_ecb_sets(preemptor, c), c);
  EXPECT_EQ(bound, ucb.max_useful * (c.miss_cycles - c.hit_cycles));
}

TEST(CrpdBound, SecondsConvenienceMatchesCycles) {
  const Program victim = make_looped_program("v", 6, 0, 6, 4);
  const Program preemptor = make_sequential_program("p", 16, 1);
  const auto c = cfg(16, 1);
  const auto ucb = compute_ucb(victim, c);
  const auto cycles =
      crpd_bound_cycles(ucb, compute_ecb_sets(preemptor, c), c);
  EXPECT_NEAR(crpd_bound_seconds(victim, preemptor, c),
              static_cast<double>(cycles) * c.cycle_seconds(), 1e-15);
}

struct CrpdCase {
  std::size_t lines;
  std::size_t assoc;
  std::uint32_t seed;
};

class CrpdSoundnessSweep : public ::testing::TestWithParam<CrpdCase> {};

/// Empirical soundness: for random preemption points, the measured extra
/// cost of (prefix, preemptor, suffix) over (prefix, suffix) never exceeds
/// the CRPD bound. Uses a looped victim so usefulness is nontrivial.
TEST_P(CrpdSoundnessSweep, BoundDominatesMeasuredPreemptionCost) {
  const auto pc = GetParam();
  const CacheConfig c = cfg(pc.lines, pc.assoc);
  std::mt19937 rng(pc.seed);

  const Program victim =
      make_looped_program("victim", pc.lines / 2, 2, pc.lines / 4, 6);
  const Program preemptor =
      make_sequential_program("preemptor", pc.lines, 1, /*base=*/1000);
  const auto ucb = compute_ucb(victim, c);
  const auto bound =
      crpd_bound_cycles(ucb, compute_ecb_sets(preemptor, c), c);

  std::uniform_int_distribution<std::size_t> cut(1, victim.trace.size() - 1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t point = cut(rng);
    const std::vector<std::uint64_t> prefix(victim.trace.begin(),
                                            victim.trace.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    point));
    const std::vector<std::uint64_t> suffix(victim.trace.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    point),
                                            victim.trace.end());
    // Without preemption.
    CacheSim clean(c);
    clean.run_trace(prefix);
    clean.reset_counters();
    const auto base_cost = clean.run_trace(suffix);
    // With preemption at `point`.
    CacheSim preempted(c);
    preempted.run_trace(prefix);
    preempted.run_trace(preemptor.trace);
    preempted.reset_counters();
    const auto preempted_cost = preempted.run_trace(suffix);

    ASSERT_LE(preempted_cost, base_cost + bound)
        << "CRPD bound violated at point " << point;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CrpdSoundnessSweep,
    ::testing::Values(CrpdCase{16, 1, 1}, CrpdCase{16, 2, 2},
                      CrpdCase{32, 1, 3}, CrpdCase{32, 4, 4},
                      CrpdCase{64, 2, 5}, CrpdCase{8, 1, 6}));

/// Reference UCB implementation (the pre-incremental per-point rescan):
/// at every program point, enumerate all lines with remaining uses and
/// query residency. The shipped compute_ucb maintains the useful-resident
/// set incrementally; this differential pins their equivalence.
catsched::cache::UcbResult reference_ucb(const Program& program,
                                         const CacheConfig& config) {
  CacheSim sim(config);
  const auto& trace = program.trace;
  std::unordered_map<std::uint64_t, std::size_t> remaining;
  for (const auto line : trace) ++remaining[line];

  catsched::cache::UcbResult out;
  out.per_point.reserve(trace.size());
  const std::size_t sets = config.num_sets();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sim.access(trace[i]);
    --remaining[trace[i]];
    std::size_t useful = 0;
    std::set<std::size_t> point_sets;
    for (const auto& [line, uses] : remaining) {
      if (uses == 0) continue;
      if (sim.contains(line)) {
        ++useful;
        point_sets.insert(static_cast<std::size_t>(line % sets));
      }
    }
    out.per_point.push_back(useful);
    if (useful >= out.max_useful) out.max_useful = useful;
    out.useful_sets.insert(point_sets.begin(), point_sets.end());
  }
  return out;
}

struct UcbDiffCase {
  std::size_t lines;
  std::size_t assoc;  // 0 = fully associative
  std::size_t address_space;
  std::uint32_t seed;
};

class UcbDifferentialSweep : public ::testing::TestWithParam<UcbDiffCase> {};

TEST_P(UcbDifferentialSweep, IncrementalMatchesReferenceOnRandomTraces) {
  const auto pc = GetParam();
  const CacheConfig c = cfg(pc.lines, pc.assoc);
  std::mt19937 rng(pc.seed);
  std::uniform_int_distribution<std::uint64_t> addr(0, pc.address_space - 1);
  std::uniform_int_distribution<std::size_t> len(1, 400);

  for (int trial = 0; trial < 12; ++trial) {
    Program p;
    p.name = "random";
    p.trace.resize(len(rng));
    for (auto& line : p.trace) line = addr(rng);

    const auto got = compute_ucb(p, c);
    const auto want = reference_ucb(p, c);
    ASSERT_EQ(got.max_useful, want.max_useful) << "trial " << trial;
    ASSERT_EQ(got.per_point, want.per_point) << "trial " << trial;
    ASSERT_EQ(got.useful_sets, want.useful_sets) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, UcbDifferentialSweep,
    ::testing::Values(UcbDiffCase{16, 1, 24, 11}, UcbDiffCase{16, 2, 64, 12},
                      UcbDiffCase{32, 4, 48, 13}, UcbDiffCase{8, 0, 12, 14},
                      UcbDiffCase{8, 1, 8, 15}, UcbDiffCase{64, 2, 300, 16}));

}  // namespace
