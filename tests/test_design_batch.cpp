/// \file test_design_batch.cpp
/// \brief Determinism contract of the batched controller-design path
///        (ISSUE 3): design_controller with a thread pool, design_batch,
///        and Evaluator::evaluate with pooled per-app designs must all be
///        bit-identical to their serial counterparts at every thread
///        count — the pool decides where candidates are evaluated, never
///        what. Also pins the PSO batch_eval hook's serial reduction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "control/design.hpp"
#include "core/case_study.hpp"
#include "core/evaluator.hpp"
#include "core/parallel.hpp"
#include "opt/pso.hpp"
#include "sched/timing.hpp"

namespace {

using catsched::control::DesignOptions;
using catsched::control::DesignProblem;
using catsched::control::DesignResult;
using catsched::control::DesignSpec;
using catsched::core::Evaluator;
using catsched::core::SystemModel;
using catsched::core::ThreadPool;
namespace control = catsched::control;
namespace core = catsched::core;
namespace opt = catsched::opt;
namespace sched = catsched::sched;

/// Small fixed design budget: determinism must hold at any budget, so the
/// tests use one that keeps a full design in the tens of milliseconds.
DesignOptions tiny_options() {
  DesignOptions o = core::date18_design_options();
  o.pso.particles = 6;
  o.pso.iterations = 8;
  o.pso.stall_iterations = 4;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

::testing::AssertionResult same_result(const DesignResult& a,
                                       const DesignResult& b) {
  if (a.gains.k != b.gains.k) {
    return ::testing::AssertionFailure() << "gain matrices differ";
  }
  if (a.gains.f != b.gains.f) {
    return ::testing::AssertionFailure() << "feedforward differs";
  }
  // Exact comparison throughout (infinity == infinity is true, which is
  // what an infeasible-design match should be).
  if (a.settling_time != b.settling_time || a.settled != b.settled ||
      a.u_max_abs != b.u_max_abs || a.spectral_radius != b.spectral_radius ||
      a.feasible != b.feasible || a.pso_evaluations != b.pso_evaluations) {
    return ::testing::AssertionFailure() << "metrics differ";
  }
  return ::testing::AssertionSuccess();
}

struct CaseStudy {
  SystemModel sys = core::date18_case_study();
  sched::ScheduleTiming timing =
      sched::derive_timing(sys.analyze_wcets(),
                           sched::PeriodicSchedule({3, 2, 3}));
  DesignSpec spec_of(std::size_t i) const {
    const auto& a = sys.apps[i];
    DesignSpec spec;
    spec.plant = a.plant;
    spec.umax = a.umax;
    spec.r = a.r;
    spec.y0 = a.y0;
    spec.smax = a.smax;
    return spec;
  }
};

TEST(DesignBatch, PooledDesignControllerIsBitIdenticalToSerial) {
  const CaseStudy cs;
  const DesignOptions opts = tiny_options();
  const DesignResult serial = control::design_controller(
      cs.spec_of(0), cs.timing.apps[0].intervals, opts);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const DesignResult pooled = control::design_controller(
        cs.spec_of(0), cs.timing.apps[0].intervals, opts, &pool);
    EXPECT_TRUE(same_result(serial, pooled)) << threads << " threads";
  }
}

TEST(DesignBatch, DesignBatchMatchesPerProblemSerialRuns) {
  const CaseStudy cs;
  const DesignOptions opts = tiny_options();
  std::vector<DesignProblem> problems;
  for (std::size_t i = 0; i < cs.sys.apps.size(); ++i) {
    problems.push_back({cs.spec_of(i), cs.timing.apps[i].intervals});
  }

  std::vector<DesignResult> serial;
  for (const auto& p : problems) {
    serial.push_back(control::design_controller(p.spec, p.intervals, opts));
  }

  // Serial batch (no pool) and pooled batch must both reproduce the
  // one-at-a-time results, in problem order.
  const auto batch_serial = control::design_batch(problems, opts);
  ASSERT_EQ(batch_serial.size(), problems.size());
  ThreadPool pool(4);
  const auto batch_pooled = control::design_batch(problems, opts, &pool);
  ASSERT_EQ(batch_pooled.size(), problems.size());
  for (std::size_t i = 0; i < problems.size(); ++i) {
    EXPECT_TRUE(same_result(serial[i], batch_serial[i])) << "problem " << i;
    EXPECT_TRUE(same_result(serial[i], batch_pooled[i])) << "problem " << i;
  }
}

TEST(DesignBatch, PooledEvaluatorIsBitIdenticalToSerial) {
  const CaseStudy cs;
  const DesignOptions opts = tiny_options();
  const sched::PeriodicSchedule schedule({3, 2, 3});

  Evaluator serial_ev(cs.sys, opts);
  const auto serial = serial_ev.evaluate(schedule);

  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    // Fresh evaluator per run: a shared memo would mask design divergence.
    Evaluator ev(cs.sys, opts, &pool);
    EXPECT_EQ(ev.pool(), &pool);
    const auto pooled = ev.evaluate(schedule);
    EXPECT_EQ(serial.pall, pooled.pall) << threads << " threads";
    EXPECT_EQ(serial.idle_feasible, pooled.idle_feasible);
    EXPECT_EQ(serial.control_feasible, pooled.control_feasible);
    ASSERT_EQ(serial.apps.size(), pooled.apps.size());
    for (std::size_t i = 0; i < serial.apps.size(); ++i) {
      EXPECT_EQ(serial.apps[i].settling_time, pooled.apps[i].settling_time);
      EXPECT_EQ(serial.apps[i].performance, pooled.apps[i].performance);
      EXPECT_EQ(serial.apps[i].feasible, pooled.apps[i].feasible);
      EXPECT_TRUE(same_result(serial.apps[i].design, pooled.apps[i].design));
    }
    // The per-app memo stays in the path when batching: one design per app.
    EXPECT_EQ(ev.designs_run(), serial_ev.designs_run());
    EXPECT_EQ(ev.design_requests(), serial_ev.design_requests());
  }
}

// The swarm update consumes costs through a serial index-ordered reduction,
// so any batch evaluator returning f(positions[i]) exactly — regardless of
// the order it fills the slots — leaves the optimum bit-identical.
TEST(DesignBatch, PsoBatchHookIsOrderInvariant) {
  const auto rosenbrock = [](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      s += 100.0 * a * a + b * b;
    }
    return s;
  };
  const std::vector<double> lo(4, -2.0);
  const std::vector<double> hi(4, 2.0);
  opt::PsoOptions base;
  base.particles = 12;
  base.iterations = 40;
  base.seed = 1234;

  const auto plain = opt::pso_minimize(rosenbrock, lo, hi, base);

  // Reverse-order fill: same values, opposite completion order.
  opt::PsoOptions batched = base;
  batched.batch_eval = [&](const std::vector<std::vector<double>>& xs,
                           std::vector<double>& costs) {
    for (std::size_t i = xs.size(); i-- > 0;) costs[i] = rosenbrock(xs[i]);
  };
  const auto rev = opt::pso_minimize(rosenbrock, lo, hi, batched);
  EXPECT_EQ(plain.x, rev.x);
  EXPECT_EQ(plain.cost, rev.cost);
  EXPECT_EQ(plain.evaluations, rev.evaluations);

  // Pool-backed fill through parallel_for, at several widths.
  for (const std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    opt::PsoOptions pooled = base;
    pooled.batch_eval = [&](const std::vector<std::vector<double>>& xs,
                            std::vector<double>& costs) {
      pool.parallel_for(xs.size(),
                        [&](std::size_t i) { costs[i] = rosenbrock(xs[i]); });
    };
    const auto par = opt::pso_minimize(rosenbrock, lo, hi, pooled);
    EXPECT_EQ(plain.x, par.x);
    EXPECT_EQ(plain.cost, par.cost);
    EXPECT_EQ(plain.evaluations, par.evaluations);
  }
}

}  // namespace
