/// \file test_energy.cpp
/// \brief Energy/DVFS co-design tests: scaled cache configuration math,
///        power-law behaviour, and the frequency sweep on a small system
///        (memory wall: miss cycles grow with clock; cache-aware gain
///        persists at every operating point).

#include <gtest/gtest.h>

#include <cmath>

#include "core/case_study.hpp"
#include "core/energy.hpp"

namespace {

using catsched::core::Application;
using catsched::core::average_power_watts;
using catsched::core::EnergyModel;
using catsched::core::EnergySweepOptions;
using catsched::core::frequency_sweep;
using catsched::core::scaled_config;
using catsched::core::SystemModel;
namespace cache = catsched::cache;
namespace control = catsched::control;
namespace linalg = catsched::linalg;

TEST(ScaledConfig, MissCyclesTrackTheClock) {
  const cache::CacheConfig base = catsched::core::date18_cache_config();
  const EnergyModel model;  // miss_ns = 5000 = 100 cy at 20 MHz
  const auto at1 = scaled_config(base, model, 1.0);
  EXPECT_EQ(at1.miss_cycles, 100u);
  EXPECT_DOUBLE_EQ(at1.clock_hz, 20.0e6);
  const auto at2 = scaled_config(base, model, 2.0);
  EXPECT_EQ(at2.miss_cycles, 200u);  // same nanoseconds, twice the cycles
  const auto at_half = scaled_config(base, model, 0.5);
  EXPECT_EQ(at_half.miss_cycles, 50u);
  // Hit cost is architectural: unchanged.
  EXPECT_EQ(at2.hit_cycles, base.hit_cycles);
}

TEST(ScaledConfig, MissNeverDropsBelowOneCycle) {
  const cache::CacheConfig base = catsched::core::date18_cache_config();
  EnergyModel model;
  model.miss_ns = 1.0;  // absurdly fast memory
  EXPECT_GE(scaled_config(base, model, 0.1).miss_cycles, 1u);
}

TEST(ScaledConfig, RejectsNonPositiveScale) {
  const cache::CacheConfig base = catsched::core::date18_cache_config();
  EXPECT_THROW(scaled_config(base, {}, 0.0), std::invalid_argument);
  EXPECT_THROW(scaled_config(base, {}, -1.0), std::invalid_argument);
}

TEST(Power, FollowsTheCubeLawForQuadraticEnergyPerCycle) {
  EnergyModel model;
  model.nj_per_cycle = 1.0;
  model.freq_exponent = 2.0;
  const double p1 = average_power_watts(model, 1.0);
  EXPECT_NEAR(p1, 1e-9 * 20e6, 1e-12);  // 20 mW at base
  EXPECT_NEAR(average_power_watts(model, 2.0), 8.0 * p1, 1e-12);
  EXPECT_NEAR(average_power_watts(model, 0.5), 0.125 * p1, 1e-12);
}

/// Small two-app system (shared fixture pattern of the core tests).
SystemModel tiny_system() {
  SystemModel sys;
  sys.cache_config = catsched::core::date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();
  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

TEST(FrequencySweep, ProducesFeasibleMonotonePowerPoints) {
  const SystemModel sys = tiny_system();
  EnergySweepOptions opts;
  opts.design = catsched::core::date18_design_options();
  opts.design.pso.particles = 12;
  opts.design.pso.iterations = 20;
  opts.design.pso_restarts = 1;
  opts.design.scale_budget_with_dims = false;
  opts.starts = {{1, 1}};
  opts.hybrid.max_value = 4;

  const auto points = frequency_sweep(sys, {}, {1.0, 2.0}, opts);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& pt : points) {
    EXPECT_TRUE(pt.feasible);
    EXPECT_GT(pt.pall_best, 0.0);
    EXPECT_GE(pt.pall_best, pt.pall_roundrobin - 1e-9);
  }
  EXPECT_LT(points[0].power_w, points[1].power_w);
  EXPECT_LT(points[0].miss_cycles, points[1].miss_cycles);
  // Faster clock shortens WCETs -> control can only improve (or the
  // optimizer at least keeps what it had).
  EXPECT_GE(points[1].pall_best, points[0].pall_best - 0.05);
}

TEST(FrequencySweep, RejectsEmptyScaleList) {
  EXPECT_THROW(frequency_sweep(tiny_system(), {}, {}, {}),
               std::invalid_argument);
}

}  // namespace
