/// \file test_export.cpp
/// \brief CSV/gnuplot export tests: round-trip parse, formatting, ragged
///        input rejection, and script references.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/export.hpp"

namespace {

using catsched::core::write_csv;
using catsched::core::write_gnuplot_script;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(WriteCsv, RoundTripsValues) {
  TempFile f("roundtrip.csv");
  write_csv(f.path, {"t", "y"}, {{0.0, 0.5, 1.0}, {1.25, -3.0, 2e-7}});
  const std::string text = slurp(f.path);
  EXPECT_EQ(text, "t,y\n0,1.25\n0.5,-3\n1,2e-07\n");
}

TEST(WriteCsv, RejectsRaggedColumns) {
  TempFile f("ragged.csv");
  EXPECT_THROW(write_csv(f.path, {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(write_csv(f.path, {}, {}), std::invalid_argument);
  EXPECT_THROW(write_csv(f.path, {"a"}, {{1.0}, {2.0}}),
               std::invalid_argument);
}

TEST(WriteCsv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_csv("/nonexistent-dir/x.csv", {"a"}, {{1.0}}),
               std::runtime_error);
}

TEST(Gnuplot, ScriptReferencesEverySeries) {
  TempFile f("plot.gp");
  const std::string script = write_gnuplot_script(
      f.path, "data.csv", "Fig. 6", {"t", "C1", "C2", "C3"});
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("using 1:4"), std::string::npos);
  EXPECT_NE(script.find("Fig. 6"), std::string::npos);
  EXPECT_EQ(script, slurp(f.path));
}

}  // namespace
