/// \file test_incremental.cpp
/// \brief Incremental re-evaluation tests: derive_timing_delta must be
///        bit-identical to from-scratch derivation over randomized move
///        sequences, Evaluator::evaluate_neighbor bit-identical to
///        evaluate(), the interleaved/hybrid searches bit-identical with
///        incremental evaluation on vs. off (at 1/2/4 threads) with memo
///        counters never exceeding the from-scratch counts, quantization
///        rejecting degenerate intervals, and the static-WCET subtree memo
///        differential.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "cache/program.hpp"
#include "cache/static_wcet.hpp"
#include "cache/structure.hpp"
#include "core/case_study.hpp"
#include "core/codesign.hpp"
#include "core/interleaved_codesign.hpp"
#include "core/parallel.hpp"
#include "sched/timing.hpp"

namespace {

using catsched::core::Application;
using catsched::core::Evaluator;
using catsched::core::interleaved_neighbor_moves;
using catsched::core::interleaved_search;
using catsched::core::InterleavedSearchOptions;
using catsched::core::quantize_intervals;
using catsched::core::ScheduleEvaluation;
using catsched::core::SystemModel;
using catsched::sched::AppWcet;
using catsched::sched::apply_move;
using catsched::sched::derive_timing;
using catsched::sched::derive_timing_delta;
using catsched::sched::expand_timing;
using catsched::sched::InterleavedSchedule;
using catsched::sched::Interval;
using catsched::sched::PeriodicSchedule;
using catsched::sched::ScheduleTiming;
using catsched::sched::TaskMove;
using catsched::sched::TimingPattern;
namespace cache = catsched::cache;
namespace control = catsched::control;
namespace linalg = catsched::linalg;
namespace opt = catsched::opt;

/// Bit-level equality (EXPECT_EQ on doubles would also pass -0.0 == 0.0;
/// the delta contract is the stronger "same bits").
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult timing_identical(const ScheduleTiming& a,
                                            const ScheduleTiming& b) {
  if (!same_bits(a.period, b.period)) {
    return ::testing::AssertionResult(false) << "period bits differ";
  }
  if (a.apps.size() != b.apps.size()) {
    return ::testing::AssertionResult(false) << "app count differs";
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const auto& ia = a.apps[i].intervals;
    const auto& ib = b.apps[i].intervals;
    if (ia.size() != ib.size()) {
      return ::testing::AssertionResult(false)
             << "app " << i << " interval count differs";
    }
    for (std::size_t j = 0; j < ia.size(); ++j) {
      if (!same_bits(ia[j].h, ib[j].h) || !same_bits(ia[j].tau, ib[j].tau) ||
          ia[j].warm != ib[j].warm) {
        return ::testing::AssertionResult(false)
               << "app " << i << " interval " << j << " differs";
      }
    }
  }
  return ::testing::AssertionResult(true);
}

TEST(DeriveTimingDelta, MatchesFromScratchOnRandomMoveSequences) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> wc(0.2e-3, 3.0e-3);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_apps = 1 + rng() % 4;
    std::vector<AppWcet> wcets(num_apps);
    for (auto& w : wcets) {
      w.cold_seconds = wc(rng);
      std::uniform_real_distribution<double> warm(0.1 * w.cold_seconds,
                                                  w.cold_seconds);
      w.warm_seconds = warm(rng);
    }
    // Random start sequence containing every app at least once.
    std::vector<std::size_t> seq;
    for (std::size_t a = 0; a < num_apps; ++a) seq.push_back(a);
    const std::size_t extra = rng() % 8;
    for (std::size_t k = 0; k < extra; ++k) seq.push_back(rng() % num_apps);
    std::shuffle(seq.begin(), seq.end(), rng);

    TimingPattern pattern = expand_timing(wcets, seq, num_apps);
    for (int moves = 0; moves < 30; ++moves) {
      // Random valid move (removals may not orphan an app).
      TaskMove move;
      const bool can_remove = seq.size() > num_apps;  // conservative
      if (!can_remove || rng() % 2 == 0) {
        move.kind = TaskMove::Kind::insert;
        move.pos = rng() % (seq.size() + 1);
        move.app = rng() % num_apps;
      } else {
        move.kind = TaskMove::Kind::remove;
        // Retry until the removal keeps every app present.
        do {
          move.pos = rng() % seq.size();
        } while (pattern.timing.apps[seq[move.pos]].intervals.size() < 2);
        move.app = seq[move.pos];
      }

      std::vector<bool> unchanged;
      const ScheduleTiming delta =
          derive_timing_delta(wcets, pattern, move, &unchanged);
      seq = apply_move(seq, move);
      const ScheduleTiming scratch = derive_timing(wcets, seq, num_apps);
      ASSERT_TRUE(timing_identical(delta, scratch))
          << "trial " << trial << " move " << moves;
      // The unchanged flags must be exact: set iff the interval list is
      // value-identical to the base schedule's.
      for (std::size_t a = 0; a < num_apps; ++a) {
        ASSERT_EQ(unchanged[a],
                  delta.apps[a].intervals == pattern.timing.apps[a].intervals)
            << "trial " << trial << " move " << moves << " app " << a;
      }
      pattern = expand_timing(wcets, seq, num_apps);
      ASSERT_TRUE(timing_identical(pattern.timing, scratch));
    }
  }
}

TEST(DeriveTimingDelta, RejectsInvalidMoves) {
  const std::vector<AppWcet> wcets{{1e-3, 0.5e-3}, {2e-3, 1e-3}};
  const TimingPattern pattern = expand_timing(wcets, {0, 1, 0}, 2);
  TaskMove bad;
  bad.kind = TaskMove::Kind::insert;
  bad.pos = 5;
  EXPECT_THROW(derive_timing_delta(wcets, pattern, bad),
               std::invalid_argument);
  bad.pos = 0;
  bad.app = 7;
  EXPECT_THROW(derive_timing_delta(wcets, pattern, bad),
               std::invalid_argument);
  TaskMove orphan;
  orphan.kind = TaskMove::Kind::remove;
  orphan.pos = 1;  // app 1's only task
  EXPECT_THROW(derive_timing_delta(wcets, pattern, orphan),
               std::invalid_argument);
}

TEST(DeriveTimingRotation, MatchesFromScratchOnRandomRotations) {
  std::mt19937 rng(1042);
  std::uniform_real_distribution<double> wc(0.2e-3, 3.0e-3);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_apps = 1 + rng() % 4;
    std::vector<AppWcet> wcets(num_apps);
    for (auto& w : wcets) {
      w.cold_seconds = wc(rng);
      std::uniform_real_distribution<double> warm(0.1 * w.cold_seconds,
                                                  w.cold_seconds);
      w.warm_seconds = warm(rng);
    }
    std::vector<std::size_t> seq;
    for (std::size_t a = 0; a < num_apps; ++a) seq.push_back(a);
    const std::size_t extra = 2 + rng() % 8;  // need length >= 2 to rotate
    for (std::size_t k = 0; k < extra; ++k) seq.push_back(rng() % num_apps);
    std::shuffle(seq.begin(), seq.end(), rng);

    TimingPattern pattern = expand_timing(wcets, seq, num_apps);
    for (int rotations = 0; rotations < 30; ++rotations) {
      catsched::sched::BlockRotation rot;
      rot.len = 2 + rng() % (seq.size() - 1);         // in [2, t]
      rot.pos = rng() % (seq.size() - rot.len + 1);   // non-wrapping
      rot.shift = 1 + rng() % (rot.len - 1);          // in [1, len-1]

      std::vector<bool> unchanged;
      const ScheduleTiming delta = catsched::sched::derive_timing_rotation(
          wcets, pattern, rot, &unchanged);
      seq = catsched::sched::apply_rotation(seq, rot);
      const ScheduleTiming scratch = derive_timing(wcets, seq, num_apps);
      ASSERT_TRUE(timing_identical(delta, scratch))
          << "trial " << trial << " rotation " << rotations << " pos "
          << rot.pos << " len " << rot.len << " shift " << rot.shift;
      // Exact unchanged flags: set iff the interval list is
      // value-identical to the base schedule's. A rotation can reorder an
      // app's occurrences inside the range, so this exercises the
      // re-read-all-in-range path, not only the three seams.
      for (std::size_t a = 0; a < num_apps; ++a) {
        ASSERT_EQ(unchanged[a],
                  delta.apps[a].intervals == pattern.timing.apps[a].intervals)
            << "trial " << trial << " rotation " << rotations << " app " << a;
      }
      pattern = expand_timing(wcets, seq, num_apps);
      ASSERT_TRUE(timing_identical(pattern.timing, scratch));
    }
  }
}

TEST(DeriveTimingRotation, RejectsInvalidRotations) {
  const std::vector<AppWcet> wcets{{1e-3, 0.5e-3}, {2e-3, 1e-3}};
  const TimingPattern pattern = expand_timing(wcets, {0, 1, 0}, 2);
  using catsched::sched::BlockRotation;
  using catsched::sched::derive_timing_rotation;
  // Range past the end of the sequence.
  EXPECT_THROW(derive_timing_rotation(wcets, pattern, BlockRotation{2, 2, 1}),
               std::invalid_argument);
  // Degenerate block (len < 2).
  EXPECT_THROW(derive_timing_rotation(wcets, pattern, BlockRotation{0, 1, 0}),
               std::invalid_argument);
  // Identity / out-of-range shift.
  EXPECT_THROW(derive_timing_rotation(wcets, pattern, BlockRotation{0, 2, 0}),
               std::invalid_argument);
  EXPECT_THROW(derive_timing_rotation(wcets, pattern, BlockRotation{0, 2, 2}),
               std::invalid_argument);
}

TEST(DeriveTimingRotation, SegmentSwapNeighborsCarryRotationDescriptors) {
  // A 3-segment schedule: every non-wrapping cyclic-successor swap must
  // come out of the neighbor generator with a rotation descriptor that
  // reproduces the candidate's canonical sequence exactly.
  const InterleavedSchedule base(
      {{0, 2}, {1, 1}, {2, 3}}, 3);
  const std::vector<std::size_t> base_seq = base.task_sequence();
  int with_rotation = 0;
  for (const auto& nb : interleaved_neighbor_moves(base, {})) {
    EXPECT_FALSE(nb.move && nb.rotation);  // at most one descriptor
    if (!nb.rotation) continue;
    ++with_rotation;
    EXPECT_EQ(catsched::sched::apply_rotation(base_seq, *nb.rotation),
              nb.schedule.task_sequence());
  }
  // Swaps of (segment 0, 1) and (1, 2) are non-wrapping; the (2, 0) swap
  // wraps and must stay descriptor-free. Some swapped shapes may be
  // invalid (mergeable) and dropped, hence >= 1 rather than == 2.
  EXPECT_GE(with_rotation, 1);
}

TEST(QuantizeIntervals, RejectsDegenerateIntervals) {
  const auto iv = [](double h, double tau) {
    Interval i;
    i.h = h;
    i.tau = tau;
    return i;
  };
  EXPECT_THROW(
      quantize_intervals({iv(std::numeric_limits<double>::infinity(), 1e-3)}),
      std::invalid_argument);
  EXPECT_THROW(
      quantize_intervals({iv(1e-3, std::numeric_limits<double>::quiet_NaN())}),
      std::invalid_argument);
  // Overflowing magnitude: |h| * 1e12 would not fit in int64 (llround UB).
  EXPECT_THROW(quantize_intervals({iv(1e9, 1e-3)}), std::invalid_argument);
  EXPECT_THROW(quantize_intervals({iv(1e-3, -1e9)}), std::invalid_argument);
  // Valid intervals quantize to picoseconds.
  const auto key = quantize_intervals({iv(2e-3, 0.5e-3)});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0], 2000000000);
  EXPECT_EQ(key[1], 500000000);
}

/// Two-app synthetic system, fast design options (as in
/// test_interleaved_search).
SystemModel tiny_system() {
  SystemModel sys;
  sys.cache_config = catsched::core::date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();
  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

control::DesignOptions fast_options() {
  control::DesignOptions o = catsched::core::date18_design_options();
  o.pso.particles = 12;
  o.pso.iterations = 20;
  o.pso.stall_iterations = 8;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

TEST(EvaluateNeighbor, BitIdenticalToFromScratchEvaluation) {
  Evaluator ev(tiny_system(), fast_options());
  const InterleavedSchedule base({{0, 2}, {1, 2}}, 2);
  const std::string base_key = base.to_string();
  const ScheduleEvaluation& base_eval = ev.evaluate_cached(base, base_key);
  const TimingPattern& pattern = ev.timing_pattern(base, base_key);

  InterleavedSearchOptions opts;
  opts.max_segments = 4;
  opts.max_burst = 4;
  int delta_neighbors = 0;
  for (const auto& nb : interleaved_neighbor_moves(base, opts)) {
    if (!nb.move) continue;
    ++delta_neighbors;
    const ScheduleEvaluation via_delta =
        ev.evaluate_neighbor(pattern, base_eval, *nb.move);
    ScheduleEvaluation scratch = ev.evaluate(nb.schedule);
    ASSERT_TRUE(timing_identical(via_delta.timing, scratch.timing))
        << nb.schedule.to_string();
    ASSERT_TRUE(same_bits(via_delta.pall, scratch.pall))
        << nb.schedule.to_string();
    ASSERT_EQ(via_delta.idle_feasible, scratch.idle_feasible);
    ASSERT_EQ(via_delta.control_feasible, scratch.control_feasible);
    ASSERT_EQ(via_delta.apps.size(), scratch.apps.size());
    for (std::size_t i = 0; i < scratch.apps.size(); ++i) {
      ASSERT_TRUE(
          same_bits(via_delta.apps[i].performance, scratch.apps[i].performance));
      ASSERT_TRUE(same_bits(via_delta.apps[i].settling_time,
                            scratch.apps[i].settling_time));
      ASSERT_EQ(via_delta.apps[i].feasible, scratch.apps[i].feasible);
      ASSERT_EQ(via_delta.apps[i].pattern_key, scratch.apps[i].pattern_key);
    }
  }
  ASSERT_GT(delta_neighbors, 0);
}

TEST(EvaluateNeighbor, SwapHintReusesUntouchedApps) {
  // Three apps so a segment swap can leave one app's pattern intact:
  // (A, B, A, B, C) -> swap the last two segments -> (A, B, A, C, B).
  SystemModel sys = tiny_system();
  {
    Application c = sys.apps[1];
    c.name = "C";
    c.program = cache::make_calibrated_program(
        "C", cache::CalibratedLayout{80, std::vector<std::size_t>(12, 2), 10},
        sys.cache_config.num_sets(), 2048);
    c.weight = 0.2;
    sys.apps[0].weight = 0.5;
    sys.apps[1].weight = 0.3;
    sys.apps.push_back(c);
  }
  Evaluator ev(sys, fast_options());
  const InterleavedSchedule base(
      {{0, 1}, {1, 1}, {0, 1}, {1, 1}, {2, 1}}, 3);
  const InterleavedSchedule swapped(
      {{0, 1}, {1, 1}, {0, 1}, {2, 1}, {1, 1}}, 3);
  const ScheduleEvaluation base_eval = ev.evaluate(base);

  ScheduleEvaluation plain = ev.evaluate(swapped);
  const int reused_before = ev.apps_reused();
  ScheduleEvaluation hinted = ev.evaluate(swapped, base_eval);
  // App A (index 0) has no task in the swapped window and the window's
  // total duration is unchanged (all cold singletons), so its pattern —
  // and at worst its quantized fingerprint — survives the swap.
  EXPECT_GT(ev.apps_reused(), reused_before);
  ASSERT_TRUE(same_bits(hinted.pall, plain.pall));
  ASSERT_TRUE(timing_identical(hinted.timing, plain.timing));
  for (std::size_t i = 0; i < plain.apps.size(); ++i) {
    ASSERT_TRUE(same_bits(hinted.apps[i].performance,
                          plain.apps[i].performance));
    ASSERT_EQ(hinted.apps[i].pattern_key, plain.apps[i].pattern_key);
  }
}

TEST(IncrementalSearch, BitIdenticalToFromScratchAtEveryThreadCount) {
  const auto start =
      InterleavedSchedule::from_periodic(PeriodicSchedule({1, 1}));
  InterleavedSearchOptions scratch_opts;
  scratch_opts.max_steps = 3;
  scratch_opts.max_segments = 4;
  scratch_opts.max_burst = 4;
  scratch_opts.incremental = false;

  Evaluator scratch_ev(tiny_system(), fast_options());
  const auto scratch =
      interleaved_search(scratch_ev, start, scratch_opts);
  ASSERT_TRUE(scratch.found);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    catsched::core::ThreadPool pool(threads);
    InterleavedSearchOptions inc_opts = scratch_opts;
    inc_opts.incremental = true;
    Evaluator inc_ev(tiny_system(), fast_options());
    const auto inc = interleaved_search(inc_ev, start, inc_opts,
                                        threads == 1 ? nullptr : &pool);
    ASSERT_EQ(scratch.found, inc.found) << threads << " threads";
    EXPECT_EQ(scratch.best.to_string(), inc.best.to_string())
        << threads << " threads";
    EXPECT_TRUE(same_bits(scratch.best_evaluation.pall,
                          inc.best_evaluation.pall))
        << threads << " threads";
    EXPECT_EQ(scratch.steps, inc.steps) << threads << " threads";
    EXPECT_EQ(scratch.evaluations, inc.evaluations) << threads << " threads";
    EXPECT_EQ(scratch.path, inc.path) << threads << " threads";
    // Same design work: the delta path must never run a design the
    // from-scratch path memoized, and its memo counters never exceed the
    // from-scratch counts.
    EXPECT_EQ(scratch_ev.designs_run(), inc_ev.designs_run())
        << threads << " threads";
    EXPECT_LE(inc_ev.design_requests(), scratch_ev.design_requests())
        << threads << " threads";
    EXPECT_EQ(scratch_ev.schedule_evaluations(),
              inc_ev.schedule_evaluations())
        << threads << " threads";
    EXPECT_GT(inc_ev.neighbor_evaluations(), 0) << threads << " threads";
  }
}

TEST(IncrementalHybrid, DeltaRoutedCodesignMatchesPlainObjective) {
  // find_optimal_schedule wires the delta-aware neighbor objective; the
  // plain multistart (no neighbor objective) is the from-scratch baseline.
  opt::HybridOptions hopts;
  hopts.max_value = 4;
  const std::vector<std::vector<int>> starts{{1, 1}, {2, 1}};

  Evaluator plain_ev(tiny_system(), fast_options());
  const auto plain = opt::hybrid_search_multistart(
      catsched::core::make_objective(plain_ev),
      catsched::core::make_cheap_feasible(plain_ev), starts, hopts);

  Evaluator delta_ev(tiny_system(), fast_options());
  const auto routed = catsched::core::find_optimal_schedule(
      delta_ev, starts, hopts);

  ASSERT_EQ(plain.combined.found_feasible, routed.found);
  ASSERT_TRUE(routed.found);
  EXPECT_EQ(plain.combined.best,
            routed.best_schedule.bursts());
  EXPECT_TRUE(
      same_bits(plain.combined.best_value, routed.best_evaluation.pall));
  EXPECT_EQ(plain.unique_evaluations, routed.schedules_evaluated);
  EXPECT_EQ(plain_ev.designs_run(), delta_ev.designs_run());
  EXPECT_LE(delta_ev.design_requests(), plain_ev.design_requests());
}

TEST(StaticMemo, MemoizedAnalysisBitIdenticalWithGuaranteedHits) {
  for (std::uint32_t seed : {1u, 7u, 23u}) {
    cache::RandomProgramOptions opts;
    opts.seed = seed;
    opts.max_depth = 3;
    opts.branch_probability = 0.25;  // bias toward loops (the memo's prey)
    const cache::StructuredProgram prog =
        cache::make_random_program("p", opts);
    cache::CacheConfig cfg;
    cfg.num_lines = 32;
    cfg.associativity = 2;

    const auto plain = cache::analyze_static_app_wcet(prog, cfg);
    cache::StaticAnalysisMemo memo;
    const auto memoized = cache::analyze_static_app_wcet(prog, cfg, &memo);

    EXPECT_EQ(plain.cold.wcet_cycles, memoized.cold.wcet_cycles);
    EXPECT_EQ(plain.cold.always_hit, memoized.cold.always_hit);
    EXPECT_EQ(plain.cold.always_miss, memoized.cold.always_miss);
    EXPECT_EQ(plain.cold.not_classified, memoized.cold.not_classified);
    EXPECT_TRUE(plain.cold.exit_state == memoized.cold.exit_state);
    EXPECT_EQ(plain.warm.wcet_cycles, memoized.warm.wcet_cycles);
    EXPECT_TRUE(plain.warm.exit_state == memoized.warm.exit_state);
    // Every stabilized multi-iteration loop replays its final probe in the
    // steady pass: with any such loop present the memo must hit.
    if (memo.size() > 0) {
      EXPECT_GT(memo.stats().hits, 0u) << "seed " << seed;
    }
    // A second memoized analysis of the same program is pure hits.
    const auto before = memo.stats();
    const auto again =
        cache::analyze_static_wcet(prog, cfg, std::nullopt, &memo);
    EXPECT_EQ(again.wcet_cycles, plain.cold.wcet_cycles);
    EXPECT_EQ(memo.stats().misses, before.misses);
  }
}

TEST(StaticMemo, CachePairHashRespectsEquality) {
  cache::CacheConfig cfg;
  cfg.num_lines = 16;
  cfg.associativity = 2;
  cache::CachePair a(cfg);
  cache::CachePair b(cfg);
  EXPECT_EQ(cache::CachePairHash{}(a), cache::CachePairHash{}(b));
  a.access(3);
  a.access(7);
  cache::CachePair c(cfg);
  c.access(3);
  c.access(7);
  EXPECT_TRUE(a == c);
  EXPECT_EQ(cache::CachePairHash{}(a), cache::CachePairHash{}(c));
  EXPECT_NE(cache::CachePairHash{}(a), cache::CachePairHash{}(b));
}

}  // namespace
