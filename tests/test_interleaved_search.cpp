/// \file test_interleaved_search.cpp
/// \brief Interleaved-schedule search tests: neighbor-move validity
///        (invariants preserved, caps respected), the local search on a
///        small synthetic system (must match or beat its periodic start),
///        and the parallel contract — pooled runs at several chunk sizes
///        must be bit-identical to the serial run.

#include <gtest/gtest.h>

#include <set>

#include "core/case_study.hpp"
#include "core/interleaved_codesign.hpp"
#include "core/parallel.hpp"

namespace {

using catsched::core::Application;
using catsched::core::Evaluator;
using catsched::core::interleaved_neighbors;
using catsched::core::interleaved_search;
using catsched::core::InterleavedSearchOptions;
using catsched::core::SystemModel;
using catsched::sched::InterleavedSchedule;
using catsched::sched::PeriodicSchedule;
using catsched::sched::Segment;
namespace cache = catsched::cache;
namespace control = catsched::control;
namespace linalg = catsched::linalg;

TEST(InterleavedNeighbors, AllNeighborsSatisfyInvariants) {
  const InterleavedSchedule s({{0, 2}, {1, 1}, {0, 1}, {2, 3}}, 3);
  InterleavedSearchOptions opts;
  const auto neighbors = interleaved_neighbors(s, opts);
  EXPECT_FALSE(neighbors.empty());
  std::set<std::string> seen;
  for (const auto& n : neighbors) {
    EXPECT_EQ(n.num_apps(), 3u);
    EXPECT_LE(n.segments().size(),
              static_cast<std::size_t>(opts.max_segments));
    for (const auto& seg : n.segments()) {
      EXPECT_GE(seg.count, 1);
      EXPECT_LE(seg.count, opts.max_burst);
    }
    // No cyclically-adjacent same-app segments (the class invariant; the
    // constructor enforces it, this documents that neighbors pass it).
    const auto& segs = n.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (segs.size() > 1) {
        EXPECT_NE(segs[i].app, segs[(i + 1) % segs.size()].app);
      }
    }
    // Every app still appears.
    for (std::size_t app = 0; app < 3; ++app) {
      EXPECT_GT(n.tasks_of(app), 0) << n.to_string();
    }
    seen.insert(n.to_string());
  }
  EXPECT_EQ(seen.size(), neighbors.size()) << "duplicate neighbors";
}

TEST(InterleavedNeighbors, IncludesTheKeyMoveKinds) {
  const InterleavedSchedule s({{0, 2}, {1, 1}, {2, 1}}, 3);
  const auto neighbors = interleaved_neighbors(s, {});
  std::set<std::string> strs;
  for (const auto& n : neighbors) strs.insert(n.to_string());
  // Grow burst: (3,1,1).
  EXPECT_TRUE(strs.count(
      InterleavedSchedule({{0, 3}, {1, 1}, {2, 1}}, 3).to_string()));
  // Shrink burst: (1,1,1).
  EXPECT_TRUE(strs.count(
      InterleavedSchedule({{0, 1}, {1, 1}, {2, 1}}, 3).to_string()));
  // Split move equivalent: insert a second C1 segment -> (2,1,1,1)-ish.
  EXPECT_TRUE(strs.count(
      InterleavedSchedule({{0, 2}, {1, 1}, {0, 1}, {2, 1}}, 3).to_string()));
}

TEST(InterleavedNeighbors, SegmentCapPrunesInsertions) {
  const InterleavedSchedule s({{0, 1}, {1, 1}}, 2);
  InterleavedSearchOptions tight;
  tight.max_segments = 2;
  for (const auto& n : interleaved_neighbors(s, tight)) {
    EXPECT_LE(n.segments().size(), 2u);
  }
}

/// Two-app synthetic system, fast design options (as in test_core).
SystemModel tiny_system() {
  SystemModel sys;
  sys.cache_config = catsched::core::date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();
  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

control::DesignOptions fast_options() {
  control::DesignOptions o = catsched::core::date18_design_options();
  o.pso.particles = 12;
  o.pso.iterations = 20;
  o.pso.stall_iterations = 8;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

TEST(InterleavedSearch, MatchesOrBeatsPeriodicStart) {
  Evaluator evaluator(tiny_system(), fast_options());
  const auto start =
      InterleavedSchedule::from_periodic(PeriodicSchedule({1, 1}));
  const double start_pall = evaluator.evaluate(start).pall;

  InterleavedSearchOptions opts;
  opts.max_steps = 4;       // keep the test fast; improvement shows early
  opts.max_segments = 4;
  opts.max_burst = 4;
  const auto res = interleaved_search(evaluator, start, opts);
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.best_evaluation.pall, start_pall - 1e-9);
  EXPECT_GE(res.evaluations, 1);
  EXPECT_FALSE(res.path.empty());
}

TEST(InterleavedSearch, ParallelIsBitIdenticalToSerial) {
  const auto start =
      InterleavedSchedule::from_periodic(PeriodicSchedule({1, 1}));
  InterleavedSearchOptions opts;
  opts.max_steps = 3;
  opts.max_segments = 4;
  opts.max_burst = 4;

  // Fresh evaluator per run so the schedule memo cannot leak results
  // between modes; the equality below is the real determinism contract.
  Evaluator serial_ev(tiny_system(), fast_options());
  const auto serial = interleaved_search(serial_ev, start, opts);
  ASSERT_TRUE(serial.found);

  catsched::core::ThreadPool pool(4);
  for (const std::size_t chunk :
       {std::size_t{0}, std::size_t{1}, std::size_t{100}}) {
    InterleavedSearchOptions popts = opts;
    popts.chunk = chunk;
    Evaluator parallel_ev(tiny_system(), fast_options());
    const auto parallel = interleaved_search(parallel_ev, start, popts, &pool);
    ASSERT_EQ(serial.found, parallel.found) << "chunk " << chunk;
    EXPECT_EQ(serial.best.to_string(), parallel.best.to_string())
        << "chunk " << chunk;
    EXPECT_EQ(serial.best_evaluation.pall, parallel.best_evaluation.pall)
        << "chunk " << chunk;
    EXPECT_EQ(serial.steps, parallel.steps) << "chunk " << chunk;
    // "Distinct schedules evaluated" must agree exactly, and so must the
    // whole accepted path (the serial-reduction guarantee).
    EXPECT_EQ(serial.evaluations, parallel.evaluations) << "chunk " << chunk;
    EXPECT_EQ(serial.path, parallel.path) << "chunk " << chunk;
    // Same design work done: each timing pattern designed exactly once.
    EXPECT_EQ(serial_ev.designs_run(), parallel_ev.designs_run())
        << "chunk " << chunk;
    EXPECT_EQ(serial_ev.schedule_evaluations(),
              parallel_ev.schedule_evaluations())
        << "chunk " << chunk;
  }
}

TEST(InterleavedSearch, EvaluatorScheduleMemoDeduplicatesAcrossSearches) {
  // Two searches from the same start on one evaluator: the second search
  // re-requests the same segment patterns but the evaluator-level memo
  // hands the finished evaluations back without re-running any design.
  Evaluator ev(tiny_system(), fast_options());
  const auto start =
      InterleavedSchedule::from_periodic(PeriodicSchedule({1, 1}));
  InterleavedSearchOptions opts;
  opts.max_steps = 2;
  opts.max_segments = 4;
  opts.max_burst = 4;

  const auto first = interleaved_search(ev, start, opts);
  const int designs_after_first = ev.designs_run();
  const int schedules_after_first = ev.schedule_evaluations();
  EXPECT_GT(schedules_after_first, 0);

  const auto second = interleaved_search(ev, start, opts);
  EXPECT_EQ(ev.designs_run(), designs_after_first);
  EXPECT_EQ(ev.schedule_evaluations(), schedules_after_first);
  // The repeat search still reports its own full accounting.
  EXPECT_EQ(second.evaluations, first.evaluations);
  EXPECT_EQ(second.path, first.path);
}

TEST(InterleavedSearch, ThrowsOnIdleInfeasibleStart) {
  Evaluator evaluator(tiny_system(), fast_options());
  // Huge bursts blow the idle-time limit (64 warm tasks of the other app
  // stretch h_max far past the 9 ms tidle of this fixture).
  const InterleavedSchedule bad({{0, 64}, {1, 64}}, 2);
  EXPECT_FALSE(evaluator.idle_feasible(bad));
  EXPECT_THROW(interleaved_search(evaluator, bad, {}),
               std::invalid_argument);
}

}  // namespace
