/// \file test_jitter.cpp
/// \brief Execution-time jitter tests: degenerate (no-jitter) trials match
///        the nominal replay, determinism, early completion never
///        destabilizes the fixture loop, and argument validation.

#include <gtest/gtest.h>

#include "control/design.hpp"
#include "core/jitter.hpp"

namespace {

using catsched::control::DesignOptions;
using catsched::control::DesignSpec;
using catsched::control::PhaseGains;
using catsched::core::jitter_study;
using catsched::core::JitterOptions;
using catsched::core::JitterReport;
using catsched::linalg::Matrix;
using catsched::sched::AppWcet;
using catsched::sched::PeriodicSchedule;

struct Fixture {
  std::vector<AppWcet> wcets;
  PeriodicSchedule schedule;
  DesignSpec spec;
  PhaseGains gains;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    f.wcets = {{660.0e-6, 165.0e-6}, {670.0e-6, 225.0e-6}};
    f.schedule = PeriodicSchedule({2, 1});
    f.spec.plant.a = Matrix{{0.0, 1.0}, {-12100.0, -44.0}};
    f.spec.plant.b = Matrix{{0.0}, {3.0e6}};
    f.spec.plant.c = Matrix{{1.0, 0.0}};
    f.spec.umax = 80.0;
    f.spec.r = 1000.0;
    f.spec.smax = 25e-3;
    const auto timing = derive_timing(f.wcets, f.schedule);
    DesignOptions opts;
    opts.pso.particles = 16;
    opts.pso.iterations = 30;
    opts.pso_restarts = 1;
    opts.scale_budget_with_dims = false;
    const auto res = catsched::control::design_controller(
        f.spec, timing.apps[0].intervals, opts);
    EXPECT_TRUE(res.feasible);
    f.gains = res.gains;
    return f;
  }();
  return fx;
}

TEST(Jitter, NoJitterTrialsEqualNominal) {
  const auto& fx = fixture();
  JitterOptions opts;
  opts.bcet_fraction = 1.0;  // every instance takes exactly its WCET
  opts.trials = 3;
  opts.periods = 128;
  const JitterReport r =
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, fx.gains, opts);
  EXPECT_EQ(r.settled, r.trials);
  EXPECT_NEAR(r.mean_settling, r.nominal_settling, 1e-12);
  EXPECT_NEAR(r.mean_abs_shift, 0.0, 1e-12);
}

TEST(Jitter, DeterministicForFixedSeed) {
  const auto& fx = fixture();
  JitterOptions opts;
  opts.bcet_fraction = 0.6;
  opts.trials = 10;
  opts.seed = 99;
  opts.periods = 128;
  const auto r1 =
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, fx.gains, opts);
  const auto r2 =
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, fx.gains, opts);
  EXPECT_EQ(r1.settled, r2.settled);
  EXPECT_DOUBLE_EQ(r1.mean_settling, r2.mean_settling);
  EXPECT_DOUBLE_EQ(r1.worst_settling, r2.worst_settling);
}

TEST(Jitter, ModerateJitterKeepsTheLoopSettling) {
  const auto& fx = fixture();
  JitterOptions opts;
  opts.bcet_fraction = 0.7;
  opts.trials = 20;
  opts.periods = 128;
  const auto r =
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, fx.gains, opts);
  EXPECT_EQ(r.settled, r.trials);  // WCET design tolerates early finishes
  EXPECT_GT(r.mean_abs_shift, 0.0);  // but the settling time does move
  EXPECT_LE(r.best_settling, r.worst_settling);
}

TEST(Jitter, RejectsBadArguments) {
  const auto& fx = fixture();
  JitterOptions opts;
  opts.bcet_fraction = 0.0;
  EXPECT_THROW(
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, fx.gains, opts),
      std::invalid_argument);
  opts.bcet_fraction = 0.5;
  EXPECT_THROW(
      jitter_study(fx.wcets, fx.schedule, 2, fx.spec, fx.gains, opts),
      std::invalid_argument);
  PhaseGains wrong = fx.gains;
  wrong.k.push_back(wrong.k.front());
  wrong.f.push_back(wrong.f.front());
  EXPECT_THROW(
      jitter_study(fx.wcets, fx.schedule, 0, fx.spec, wrong, opts),
      std::invalid_argument);
}

}  // namespace
