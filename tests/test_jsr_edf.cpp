/// \file test_jsr_edf.cpp
/// \brief Joint-spectral-radius and EDF-simulation tests: known JSR values,
///        bound sandwiching, EDF schedulability and response ranges, and
///        the combined dynamic-timing stability check.

#include <gtest/gtest.h>

#include <cmath>

#include "control/c2d.hpp"
#include "control/jsr.hpp"
#include "sched/edf.hpp"

namespace {

using catsched::control::joint_spectral_radius;
using catsched::control::verify_arbitrary_switching;
using catsched::linalg::Matrix;
using catsched::sched::EdfTask;
using catsched::sched::simulate_edf;

TEST(Jsr, SingleMatrixEqualsSpectralRadius) {
  const Matrix a{{0.5, 1.0}, {0.0, 0.5}};
  const auto b = joint_spectral_radius({a}, 10);
  EXPECT_NEAR(b.lower, 0.5, 1e-9);
  EXPECT_GE(b.upper, b.lower);
  // Defective eigenvalue: ||A^k||^(1/k) converges slowly from above, but
  // at depth 10 the sandwich is already informative.
  EXPECT_LT(b.upper, 0.9);
}

TEST(Jsr, BoundsSandwichForCommutingPair) {
  // Diagonal (commuting) matrices: JSR = max spectral radius = 0.8.
  const Matrix a = Matrix::diagonal({0.8, 0.2});
  const Matrix b = Matrix::diagonal({0.3, 0.7});
  const auto bound = joint_spectral_radius({a, b}, 8);
  EXPECT_NEAR(bound.lower, 0.8, 1e-9);
  EXPECT_NEAR(bound.upper, 0.8, 1e-9);  // diagonal: norms equal radii
}

TEST(Jsr, DetectsProductInstabilityInvisibleToIndividualRadii) {
  // Classic pair: each matrix has spectral radius 0 (nilpotent), but the
  // product [[0,1],[0,0]]*[[0,0],[1,0]] has an eigenvalue 1 -> JSR >= 1.
  const Matrix a{{0.0, 2.0}, {0.0, 0.0}};
  const Matrix b{{0.0, 0.0}, {2.0, 0.0}};
  const auto v = verify_arbitrary_switching({a, b}, 6);
  EXPECT_TRUE(v.unstable);
  EXPECT_GE(v.bound.lower, 2.0 - 1e-9);  // rho(AB) = 4 -> 4^(1/2) = 2
}

TEST(Jsr, CertifiesContractionFamilies) {
  const Matrix a{{0.4, 0.1}, {0.0, 0.3}};
  const Matrix b{{0.2, -0.2}, {0.1, 0.5}};
  const auto v = verify_arbitrary_switching({a, b}, 6);
  EXPECT_TRUE(v.stable);
  EXPECT_FALSE(v.unstable);
  EXPECT_LE(v.bound.lower, v.bound.upper + 1e-12);
}

TEST(Jsr, RejectsDegenerateInput) {
  EXPECT_THROW(joint_spectral_radius({}, 4), std::invalid_argument);
  EXPECT_THROW(
      joint_spectral_radius({Matrix::identity(2), Matrix::identity(3)}, 4),
      std::invalid_argument);
  EXPECT_THROW(joint_spectral_radius({Matrix::identity(2)}, 0),
               std::invalid_argument);
  const std::vector<Matrix> three(3, Matrix::identity(2));
  EXPECT_THROW(joint_spectral_radius(three, 40, 100),
               std::invalid_argument);  // product cap (3^40 products)
}

TEST(Edf, UnderloadedSetMeetsEveryDeadline) {
  const std::vector<EdfTask> tasks = {{4.0, 1.0}, {6.0, 2.0}};  // U = 7/12
  const auto res = simulate_edf(tasks, 24.0);  // one hyperperiod
  EXPECT_FALSE(res.any_miss);
  EXPECT_NEAR(res.utilization, 1.0 / 4 + 2.0 / 6, 1e-12);
  // Job counts over [0, 24): 6 of task 0, 4 of task 1.
  EXPECT_EQ(res.jobs_of(0).size(), 6u);
  EXPECT_EQ(res.jobs_of(1).size(), 4u);
}

TEST(Edf, FullUtilizationStillSchedulable) {
  // EDF is optimal on one processor: U = 1 exactly meets all deadlines.
  const std::vector<EdfTask> tasks = {{2.0, 1.0}, {4.0, 2.0}};
  const auto res = simulate_edf(tasks, 8.0);
  EXPECT_FALSE(res.any_miss);
}

TEST(Edf, OverloadMissesDeadlines) {
  const std::vector<EdfTask> tasks = {{2.0, 1.5}, {4.0, 1.5}};  // U > 1
  const auto res = simulate_edf(tasks, 16.0);
  EXPECT_TRUE(res.any_miss);
}

TEST(Edf, ResponseRangeCapturesJitter) {
  const std::vector<EdfTask> tasks = {{4.0, 1.0}, {6.0, 2.0}};
  const auto res = simulate_edf(tasks, 24.0);
  const auto r0 = res.response_range(0);
  const auto r1 = res.response_range(1);
  // Task 0's response is at least its WCET, at most its deadline.
  EXPECT_GE(r0.min, 1.0 - 1e-12);
  EXPECT_LE(r0.max, 4.0 + 1e-12);
  // Task 1 is sometimes preempted/delayed: max > min (dynamic timing!).
  EXPECT_GT(r1.max, r1.min);
}

TEST(Edf, RejectsDegenerateInput) {
  EXPECT_THROW(simulate_edf({}, 1.0), std::invalid_argument);
  EXPECT_THROW(simulate_edf({{0.0, 1.0}}, 1.0), std::invalid_argument);
  EXPECT_THROW(simulate_edf({{1.0, 1.0}}, 0.0), std::invalid_argument);
}

TEST(DynamicStability, EdfTimingVariantsCertifiedByJsr) {
  // A servo loop under EDF: sensing at release, actuation at completion.
  // Each observed (h = period, tau = response) pair yields one closed-loop
  // matrix; JSR < 1 over the set certifies stability for ANY interleaving
  // of those timings (the paper's Sec. VI fallback, made checkable).
  catsched::control::ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};

  const std::vector<EdfTask> tasks = {{0.010, 0.004}, {0.015, 0.005}};
  const auto sim = simulate_edf(tasks, 0.3);
  ASSERT_FALSE(sim.any_miss);
  const auto range = sim.response_range(0);

  // Fixed gain designed crudely for the nominal case (damping strong
  // enough that the depth-8 norm bound certifies contraction).
  const Matrix k{{-3.0, -0.25}};
  std::vector<Matrix> closed;
  for (const double tau : {range.min, range.max}) {
    const auto ph =
        catsched::control::discretize_interval(plant, 0.010, tau);
    // Augmented [x; u_prev] closed loop with u = K x.
    Matrix acl(3, 3);
    acl.set_block(0, 0, ph.ad + ph.b2 * k);
    acl.set_block(0, 2, ph.b1);
    acl.set_block(2, 0, k);
    closed.push_back(acl);
  }
  const auto verdict = verify_arbitrary_switching(closed, 6);
  EXPECT_TRUE(verdict.stable);
}

}  // namespace
