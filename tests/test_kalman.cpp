/// \file test_kalman.cpp
/// \brief Kalman filter tests: scalar filter-DARE closed form, stability of
///        the predictor error dynamics, periodic filter vs stationary
///        limit, noise-dependence of the gain, and the Kalman-vs-Luenberger
///        comparison under noise (Kalman must win on its own turf).

#include <gtest/gtest.h>

#include <cmath>

#include "control/c2d.hpp"
#include "control/kalman.hpp"
#include "control/observer.hpp"
#include "linalg/eig.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::design_switched_observer;
using catsched::control::discretize_interval;
using catsched::control::discretize_phases;
using catsched::control::kalman_predictor;
using catsched::control::NoisySimOptions;
using catsched::control::periodic_kalman;
using catsched::control::simulate_noisy_regulation;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

/// Scalar filter DARE p = a^2 p - a^2 p^2 c^2/(c^2 p + r) + q has the same
/// closed form as the control DARE with (a, c) in place of (a, b).
double scalar_filter_dare(double a, double c, double q, double r) {
  const double aa = c * c;
  const double bb = r - a * a * r - c * c * q;
  const double cc = -q * r;
  return (-bb + std::sqrt(bb * bb - 4.0 * aa * cc)) / (2.0 * aa);
}

TEST(Kalman, MatchesScalarClosedForm) {
  const double a = 0.9, c = 1.0, q = 0.2, r = 0.5;
  const auto res = kalman_predictor(Matrix{{a}}, Matrix{{c}}, Matrix{{q}},
                                    Matrix{{r}});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.p(0, 0), scalar_filter_dare(a, c, q, r), 1e-9);
  const double p = res.p(0, 0);
  EXPECT_NEAR(res.l(0, 0), a * p * c / (c * p * c + r), 1e-9);
}

TEST(Kalman, ErrorDynamicsAreSchurStable) {
  // Unstable plant, observable output: the filter must stabilize A - L C.
  const Matrix a{{1.1, 0.2}, {0.0, 0.95}};
  const Matrix c{{1.0, 0.0}};
  const auto res = kalman_predictor(a, c, 0.1 * Matrix::identity(2),
                                    Matrix{{0.2}});
  ASSERT_TRUE(res.converged);
  EXPECT_LT(catsched::linalg::spectral_radius(a - res.l * c), 1.0);
  // Covariance is symmetric PSD.
  EXPECT_TRUE(catsched::linalg::approx_equal(res.p, res.p.transposed(),
                                             1e-9));
  EXPECT_GE(res.p(0, 0), 0.0);
  EXPECT_GE(res.p(1, 1), 0.0);
}

TEST(Kalman, NoisierMeasurementsShrinkTheGain) {
  const Matrix a{{0.98, 0.1}, {0.0, 0.9}};
  const Matrix c{{1.0, 0.0}};
  const Matrix q = 0.05 * Matrix::identity(2);
  const auto trusting = kalman_predictor(a, c, q, Matrix{{0.01}});
  const auto skeptical = kalman_predictor(a, c, q, Matrix{{10.0}});
  ASSERT_TRUE(trusting.converged);
  ASSERT_TRUE(skeptical.converged);
  EXPECT_GT(trusting.l.norm(), skeptical.l.norm());
}

TEST(Kalman, ThrowsOnSingularInnovationWithoutNoise) {
  // r = 0 and q = 0 gives a singular innovation covariance immediately
  // for c = 0 (unobservable, no noise): expect a domain error.
  const Matrix a{{1.0}};
  const Matrix c{{0.0}};
  EXPECT_THROW(
      kalman_predictor(a, c, Matrix{{0.0}}, Matrix{{0.0}}),
      std::domain_error);
}

TEST(PeriodicKalman, IdenticalPhasesReduceToStationary) {
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const auto ph = discretize_interval(plant, 0.01, 0.01);
  const Matrix q = 0.01 * Matrix::identity(2);
  const Matrix r{{0.1}};
  const auto stat = kalman_predictor(ph.ad, plant.c, q, r);
  const std::vector<catsched::control::PhaseDynamics> phases(3, ph);
  const auto peri = periodic_kalman(phases, plant.c, q, r);
  ASSERT_TRUE(peri.converged);
  for (const auto& l : peri.l) {
    EXPECT_TRUE(catsched::linalg::approx_equal(l, stat.l, 1e-7));
  }
}

TEST(PeriodicKalman, StabilizesSwitchedErrorMonodromy) {
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.006, 0.006, true},
                                           {0.030, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto res = periodic_kalman(phases, plant.c,
                                   0.01 * Matrix::identity(2), Matrix{{0.1}});
  ASSERT_TRUE(res.converged);
  Matrix mono = Matrix::identity(2);
  for (std::size_t j = 0; j < phases.size(); ++j) {
    mono = (phases[j].ad - res.l[j] * plant.c) * mono;
  }
  EXPECT_LT(catsched::linalg::spectral_radius(mono), 1.0);
}

TEST(NoisySim, KalmanBeatsLuenbergerUnderItsNoiseModel) {
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.026, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);

  // A stabilizing (not optimized) regulation gain set, shared by both.
  std::vector<Matrix> k(phases.size(), Matrix{{-5.0, -0.05}});

  NoisySimOptions nopts;
  nopts.process_std = 0.02;
  nopts.measurement_std = 0.05;
  nopts.steps = 4000;
  nopts.seed = 3;

  const Matrix q = nopts.process_std * nopts.process_std *
                   Matrix::identity(2);
  const Matrix r{{nopts.measurement_std * nopts.measurement_std}};
  const auto kalman = periodic_kalman(phases, plant.c, q, r);
  ASSERT_TRUE(kalman.converged);
  const auto luen = design_switched_observer(phases, plant.c, 0.2);

  const auto res_kalman = simulate_noisy_regulation(phases, plant.c, k,
                                                    kalman.l, nopts);
  const auto res_luen =
      simulate_noisy_regulation(phases, plant.c, k, luen, nopts);
  // The Kalman gains are optimal for exactly this noise: strictly better
  // RMS estimation error (generous 5% slack guards numerical accidents).
  EXPECT_LT(res_kalman.rms_estimation_error,
            res_luen.rms_estimation_error * 1.05);
}

TEST(NoisySim, NoiselessRunDrivesErrorToZero) {
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const auto phases = discretize_phases(
      plant, {{0.010, 0.010, false}, {0.026, 0.006, true}});
  std::vector<Matrix> k(phases.size(), Matrix{{-5.0, -0.05}});
  const auto kalman = periodic_kalman(phases, plant.c,
                                      1e-4 * Matrix::identity(2),
                                      Matrix{{1e-4}});
  NoisySimOptions clean;
  clean.process_std = 0.0;
  clean.measurement_std = 0.0;
  clean.steps = 3000;
  const auto res =
      simulate_noisy_regulation(phases, plant.c, k, kalman.l, clean);
  EXPECT_LT(res.rms_estimation_error, 0.05);  // transient only
}

TEST(NoisySim, RejectsMismatchedGainCounts) {
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  plant.b = Matrix{{0.0}, {200.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const auto phases =
      discretize_phases(plant, {{0.010, 0.010, false}});
  const std::vector<Matrix> k(1, Matrix{{-5.0, -0.05}});
  const std::vector<Matrix> l;  // wrong count
  EXPECT_THROW(simulate_noisy_regulation(phases, plant.c, k, l, {}),
               std::invalid_argument);
}

}  // namespace
