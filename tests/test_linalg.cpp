// Unit and property tests for the dense linear-algebra substrate.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/poly.hpp"

using namespace catsched::linalg;

namespace {

Matrix random_matrix(std::size_t n, std::uint64_t seed, double scale = 1.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-scale, scale);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = d(rng);
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------- Matrix

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3.trace(), 3.0);
  const Matrix d = Matrix::diagonal({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, ArithmeticAndDimensionChecks) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_TRUE(approx_equal(a + b, Matrix{{6.0, 8.0}, {10.0, 12.0}}));
  EXPECT_TRUE(approx_equal(b - a, Matrix{{4.0, 4.0}, {4.0, 4.0}}));
  EXPECT_TRUE(approx_equal(a * 2.0, Matrix{{2.0, 4.0}, {6.0, 8.0}}));
  EXPECT_TRUE(approx_equal(-a, Matrix{{-1.0, -2.0}, {-3.0, -4.0}}));
  const Matrix ab = a * b;
  EXPECT_TRUE(approx_equal(ab, Matrix{{19.0, 22.0}, {43.0, 50.0}}));
  Matrix c(3, 2);
  EXPECT_THROW(a + c, std::invalid_argument);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
  EXPECT_THROW(a / 0.0, std::invalid_argument);
}

TEST(Matrix, BlocksAndConcat) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(approx_equal(a.block(0, 1, 2, 1), Matrix{{2.0}, {4.0}}));
  EXPECT_THROW(a.block(1, 1, 2, 1), std::out_of_range);
  Matrix z(2, 2);
  z.set_block(0, 0, Matrix{{9.0}});
  EXPECT_DOUBLE_EQ(z(0, 0), 9.0);
  const Matrix h = Matrix::hcat(a, a);
  EXPECT_EQ(h.cols(), 4u);
  const Matrix v = Matrix::vcat(a, a);
  EXPECT_EQ(v.rows(), 4u);
  const Matrix fb = Matrix::from_blocks({{a, a}, {a, a}});
  EXPECT_EQ(fb.rows(), 4u);
  EXPECT_EQ(fb.cols(), 4u);
  EXPECT_DOUBLE_EQ(fb(2, 2), 1.0);
}

TEST(Matrix, NormsAndTranspose) {
  Matrix a{{3.0, -4.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_1(), 4.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_TRUE(approx_equal(a.transposed(),
                           Matrix{{3.0, 0.0}, {-4.0, 0.0}}));
}

// -------------------------------------------------------------------- LU

TEST(LU, SolveRoundTrip) {
  const Matrix a{{4.0, 2.0, 0.6}, {2.0, 5.0, 1.0}, {0.6, 1.0, 3.0}};
  const Matrix b = Matrix::column({1.0, -2.0, 0.5});
  const Matrix x = solve(a, b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-10));
}

TEST(LU, InverseAndDeterminant) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  EXPECT_NEAR(determinant(a), 5.0, 1e-12);
  EXPECT_TRUE(approx_equal(a * inverse(a), Matrix::identity(2), 1e-12));
}

TEST(LU, SingularDetected) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LU lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_THROW(lu.solve(Matrix::column({1.0, 1.0})), std::domain_error);
  EXPECT_THROW(LU(Matrix(2, 3)), std::invalid_argument);
}

TEST(LU, PropertyRandomRoundTrips) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 1 + seed % 7;
    Matrix a = random_matrix(n, seed);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
    const Matrix b = random_matrix(n, seed + 1000).block(0, 0, n, 1);
    const Matrix x = solve(a, b);
    EXPECT_TRUE(approx_equal(a * x, b, 1e-8)) << "seed " << seed;
    EXPECT_TRUE(approx_equal(a * inverse(a), Matrix::identity(n), 1e-8));
  }
}

TEST(Rank, DetectsDeficiency) {
  EXPECT_EQ(rank(Matrix::identity(4)), 4u);
  EXPECT_EQ(rank(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 1u);
  EXPECT_EQ(rank(Matrix(3, 3)), 0u);
  EXPECT_EQ(rank(Matrix{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}}), 2u);
}

// ------------------------------------------------------------ Polynomials

TEST(Poly, FromRootsRealAndComplex) {
  // (x - 1)(x - 2) = x^2 - 3x + 2
  const Poly p = poly_from_roots({{1.0, 0.0}, {2.0, 0.0}});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 2.0, 1e-12);
  EXPECT_NEAR(p[1], -3.0, 1e-12);
  EXPECT_NEAR(p[2], 1.0, 1e-12);
  // Conjugate pair: (x - (1+2i))(x - (1-2i)) = x^2 - 2x + 5
  const Poly q = poly_from_roots({{1.0, 2.0}, {1.0, -2.0}});
  EXPECT_NEAR(q[0], 5.0, 1e-12);
  EXPECT_NEAR(q[1], -2.0, 1e-12);
  // Non-conjugate-closed set must throw.
  EXPECT_THROW(poly_from_roots({{1.0, 2.0}}), std::invalid_argument);
}

TEST(Poly, CharPolyMatchesKnownMatrix) {
  // charpoly of [[2,1],[0,3]] = (x-2)(x-3) = x^2 -5x + 6.
  const Poly p = char_poly(Matrix{{2.0, 1.0}, {0.0, 3.0}});
  EXPECT_NEAR(p[0], 6.0, 1e-12);
  EXPECT_NEAR(p[1], -5.0, 1e-12);
  EXPECT_NEAR(p[2], 1.0, 1e-12);
}

TEST(Poly, CayleyHamiltonProperty) {
  // p(A) = 0 for the characteristic polynomial of A.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 2 + seed % 4;
    const Matrix a = random_matrix(n, seed);
    const Matrix z = poly_eval(char_poly(a), a);
    EXPECT_LT(z.max_abs(), 1e-8) << "seed " << seed;
  }
}

TEST(Poly, RootsRecoverKnownSet) {
  const Poly p = poly_from_roots(
      {{0.5, 0.0}, {-0.25, 0.6}, {-0.25, -0.6}, {0.9, 0.0}});
  auto roots = poly_roots(p);
  ASSERT_EQ(roots.size(), 4u);
  // Every recovered root must satisfy p(root) ~ 0.
  for (const auto& r : roots) {
    EXPECT_LT(std::abs(poly_eval(p, r)), 1e-8);
  }
}

TEST(Poly, RootsRejectDegenerate) {
  EXPECT_THROW(poly_roots(Poly{1.0}), std::invalid_argument);
  EXPECT_THROW(poly_eval(Poly{}, Matrix::identity(2)), std::invalid_argument);
}

// ------------------------------------------------------------ Eigenvalues

TEST(Eig, DiagonalMatrix) {
  auto ev = eigenvalues(Matrix::diagonal({3.0, -1.0, 0.5}));
  std::vector<double> re;
  for (auto& e : ev) {
    EXPECT_NEAR(e.imag(), 0.0, 1e-10);
    re.push_back(e.real());
  }
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -1.0, 1e-10);
  EXPECT_NEAR(re[1], 0.5, 1e-10);
  EXPECT_NEAR(re[2], 3.0, 1e-10);
}

TEST(Eig, ComplexPairFromRotation) {
  // Rotation-scaling matrix: eigenvalues 0.8 e^{+-i 0.7}.
  const double rho = 0.8;
  const double th = 0.7;
  Matrix a{{rho * std::cos(th), -rho * std::sin(th)},
           {rho * std::sin(th), rho * std::cos(th)}};
  auto ev = eigenvalues(a);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NEAR(std::abs(ev[0]), rho, 1e-10);
  EXPECT_NEAR(std::abs(ev[0].imag()), rho * std::sin(th), 1e-10);
  EXPECT_NEAR(ev[0].real(), rho * std::cos(th), 1e-10);
  EXPECT_NEAR(spectral_radius(a), rho, 1e-10);
  EXPECT_TRUE(is_schur_stable(a));
}

TEST(Eig, AgreesWithCharPolyRoots) {
  // Property: QR eigenvalues are roots of the characteristic polynomial.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const std::size_t n = 2 + seed % 5;
    const Matrix a = random_matrix(n, seed);
    const Poly cp = char_poly(a);
    for (const auto& e : eigenvalues(a)) {
      EXPECT_LT(std::abs(poly_eval(cp, e)), 1e-6 * std::pow(2.0, n))
          << "seed " << seed;
    }
  }
}

TEST(Eig, TraceAndDetInvariants) {
  // Property: sum(eig) = trace, prod(eig) = det.
  for (std::uint64_t seed = 100; seed <= 110; ++seed) {
    const std::size_t n = 2 + seed % 4;
    const Matrix a = random_matrix(n, seed);
    auto ev = eigenvalues(a);
    std::complex<double> sum = 0.0;
    std::complex<double> prod = 1.0;
    for (auto& e : ev) {
      sum += e;
      prod *= e;
    }
    EXPECT_NEAR(sum.real(), a.trace(), 1e-7) << "seed " << seed;
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
    EXPECT_NEAR(prod.real(), determinant(a), 1e-6) << "seed " << seed;
  }
}

TEST(Eig, HessenbergPreservesEigenvalues) {
  const Matrix a = random_matrix(5, 42);
  const Matrix h = hessenberg(a);
  // Hessenberg structure: zero below the first subdiagonal.
  for (std::size_t i = 2; i < 5; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) {
      EXPECT_NEAR(h(i, j), 0.0, 1e-12);
    }
  }
  EXPECT_NEAR(h.trace(), a.trace(), 1e-9);
  EXPECT_NEAR(spectral_radius(h), spectral_radius(a), 1e-8);
}

TEST(Eig, ZeroAndIdentity) {
  EXPECT_DOUBLE_EQ(spectral_radius(Matrix(3, 3)), 0.0);
  EXPECT_DOUBLE_EQ(spectral_radius(Matrix::identity(3)), 1.0);
  EXPECT_FALSE(is_schur_stable(Matrix::identity(2)));
}

// ------------------------------------------------------------------ expm

TEST(Expm, IdentityAndZero) {
  EXPECT_TRUE(approx_equal(expm(Matrix(3, 3)), Matrix::identity(3), 1e-14));
  const Matrix e = expm(Matrix::identity(2));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(Expm, DiagonalExact) {
  const Matrix e = expm(Matrix::diagonal({1.0, -2.0, 0.1}));
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.1), 1e-12);
}

TEST(Expm, NilpotentExact) {
  // exp([[0,1],[0,0]] t) = [[1,t],[0,1]].
  Matrix n{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix e = expm(n * 3.5);
  EXPECT_NEAR(e(0, 1), 3.5, 1e-12);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-12);
}

TEST(Expm, SemigroupProperty) {
  // Property: exp(A) exp(A) = exp(2A) for random matrices.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Matrix a = random_matrix(4, seed, 2.0);
    const Matrix e1 = expm(a);
    const Matrix e2 = expm(a * 2.0);
    EXPECT_TRUE(approx_equal(e1 * e1, e2, 1e-7 * e2.max_abs()))
        << "seed " << seed;
  }
}

TEST(Expm, InverseProperty) {
  // exp(A) exp(-A) = I.
  const Matrix a = random_matrix(4, 7, 1.5);
  EXPECT_TRUE(approx_equal(expm(a) * expm(-a), Matrix::identity(4), 1e-9));
}

TEST(ExpmIntegral, MatchesSeriesForSmallT) {
  // Phi(t) ~ t I + t^2/2 A + t^3/6 A^2 for small t.
  const Matrix a = random_matrix(3, 3);
  const double t = 1e-3;
  const Matrix phi = expm_integral(a, t);
  Matrix series = Matrix::identity(3) * t + a * (t * t / 2.0) +
                  a * a * (t * t * t / 6.0);
  EXPECT_TRUE(approx_equal(phi, series, 1e-12));
}

TEST(ExpmIntegral, InvertibleACaseClosedForm) {
  // For invertible A: Phi(t) = A^{-1}(exp(At) - I).
  Matrix a{{-2.0, 0.5}, {0.1, -1.0}};
  const double t = 0.37;
  const Matrix phi = expm_integral(a, t);
  const Matrix closed = inverse(a) * (expm(a * t) - Matrix::identity(2));
  EXPECT_TRUE(approx_equal(phi, closed, 1e-11));
}

TEST(ExpmIntegral, SingularAWellDefined) {
  // A = 0: Phi(t) = t I.
  const Matrix phi = expm_integral(Matrix(2, 2), 0.5);
  EXPECT_TRUE(approx_equal(phi, Matrix::identity(2) * 0.5, 1e-13));
  EXPECT_THROW(expm_integral(Matrix(2, 2), -1.0), std::invalid_argument);
}

// Parameterized property sweep: expm_with_integral consistency across time
// scales (the pair must satisfy d/dt relationships at every scale).
class ExpmScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(ExpmScaleTest, PairConsistency) {
  const double t = GetParam();
  const Matrix a{{0.0, 1.0}, {-14400.0, -36.0}};  // case-study-like plant
  const auto pair = expm_with_integral(a, t);
  // Phi(t) = integral: differentiate numerically: Phi(t+e)-Phi(t) ~ e*exp(At)
  const double e = t * 1e-6 + 1e-12;
  const Matrix dphi = expm_integral(a, t + e) - pair.phi;
  EXPECT_TRUE(approx_equal(dphi / e, pair.ad, 1e-3 * pair.ad.max_abs() + 1e-6))
      << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(TimeScales, ExpmScaleTest,
                         ::testing::Values(1e-6, 1e-4, 1e-3, 1e-2, 0.1, 1.0));
