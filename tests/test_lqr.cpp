/// \file test_lqr.cpp
/// \brief LQR tests: scalar DARE closed form, stabilization properties,
///        periodic Riccati vs stationary limit, exact cost vs simulated sum,
///        and the augmented-phase lifting used for delayed schedule phases.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "control/c2d.hpp"
#include "control/lqr.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"

namespace {

using catsched::control::augment_phase;
using catsched::control::augment_phases;
using catsched::control::ContinuousLTI;
using catsched::control::discretize_interval;
using catsched::control::dlqr;
using catsched::control::periodic_cost_matrix;
using catsched::control::periodic_lqr;
using catsched::control::periodic_regulation_cost;
using catsched::control::PeriodicPhase;
using catsched::control::PhaseDynamics;
using catsched::linalg::Matrix;

/// Scalar DARE p = q + a^2 p - a^2 p^2 b^2 / (r + p b^2) has the positive
/// root of b^2 p^2 + (r - a^2 r - b^2 q) p - q r = 0.
double scalar_dare(double a, double b, double q, double r) {
  const double aa = b * b;
  const double bb = r - a * a * r - b * b * q;
  const double cc = -q * r;
  return (-bb + std::sqrt(bb * bb - 4.0 * aa * cc)) / (2.0 * aa);
}

TEST(Dlqr, MatchesScalarClosedForm) {
  const double a = 1.2, b = 0.7, q = 2.0, r = 0.5;
  const auto res = dlqr(Matrix{{a}}, Matrix{{b}}, Matrix{{q}}, Matrix{{r}});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.p(0, 0), scalar_dare(a, b, q, r), 1e-9);
  // K = (r + b p b)^{-1} b p a.
  const double p = res.p(0, 0);
  EXPECT_NEAR(res.k(0, 0), b * p * a / (r + b * p * b), 1e-9);
}

TEST(Dlqr, SolutionSatisfiesDareResidual) {
  const Matrix a{{1.1, 0.3}, {-0.2, 0.95}};
  const Matrix b{{0.0}, {1.0}};
  const Matrix q = Matrix::identity(2);
  const Matrix r{{0.25}};
  const auto res = dlqr(a, b, q, r);
  ASSERT_TRUE(res.converged);
  const Matrix btp = b.transposed() * res.p;
  const Matrix gram = r + btp * b;
  const Matrix rhs = q + a.transposed() * res.p * a -
                     a.transposed() * res.p * b *
                         catsched::linalg::solve(gram, btp * a);
  EXPECT_TRUE(catsched::linalg::approx_equal(res.p, rhs, 1e-8));
}

class DlqrStabilizationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DlqrStabilizationSweep, ClosedLoopIsSchurStableForUnstablePlants) {
  std::mt19937 rng(300 + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 3;
  // Controllable companion-form plant with (possibly) unstable poles.
  Matrix a = Matrix::zero(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) a(i, i + 1) = 1.0;
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.5 * dist(rng);
  Matrix b = Matrix::zero(n, 1);
  b(n - 1, 0) = 1.0;
  const auto res = dlqr(a, b, Matrix::identity(n), Matrix{{1.0}});
  ASSERT_TRUE(res.converged);
  EXPECT_LT(catsched::linalg::spectral_radius(a - b * res.k), 1.0);
  // Cost-to-go must be symmetric positive semidefinite: check diagonal.
  for (std::size_t i = 0; i < n; ++i) EXPECT_GE(res.p(i, i), 0.0);
}

INSTANTIATE_TEST_SUITE_P(CompanionPlants, DlqrStabilizationSweep,
                         ::testing::Range(0, 10));

TEST(Dlqr, HeavierInputWeightShrinksGain) {
  const Matrix a{{1.05, 0.1}, {0.0, 0.9}};
  const Matrix b{{0.0}, {1.0}};
  const Matrix q = Matrix::identity(2);
  const auto cheap = dlqr(a, b, q, Matrix{{0.01}});
  const auto pricey = dlqr(a, b, q, Matrix{{100.0}});
  ASSERT_TRUE(cheap.converged);
  ASSERT_TRUE(pricey.converged);
  EXPECT_GT(cheap.k.norm(), pricey.k.norm());
}

TEST(Dlqr, ThrowsOnDimensionMismatch) {
  EXPECT_THROW(dlqr(Matrix::identity(2), Matrix{{1.0}}, Matrix::identity(2),
                    Matrix{{1.0}}),
               std::invalid_argument);
}

TEST(AugmentPhase, ReproducesDelayedDynamics) {
  // Double integrator, h = 10 ms, tau = 6 ms.
  ContinuousLTI plant;
  plant.a = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  plant.b = Matrix{{0.0}, {1.0}};
  plant.c = Matrix{{1.0, 0.0}};
  const PhaseDynamics ph = discretize_interval(plant, 0.010, 0.006);
  const PeriodicPhase aug = augment_phase(ph);
  ASSERT_EQ(aug.a.rows(), 3u);
  ASSERT_EQ(aug.b.rows(), 3u);

  // One augmented step must equal the component-wise delayed update.
  const Matrix x0 = Matrix::column({0.3, -0.2});
  const double u_prev = 0.7, u = -0.4;
  const Matrix x1 = ph.ad * x0 + ph.b1 * u_prev + ph.b2 * u;
  Matrix z0(3, 1);
  z0.set_block(0, 0, x0);
  z0(2, 0) = u_prev;
  const Matrix z1 = aug.a * z0 + aug.b * Matrix{{u}};
  EXPECT_NEAR(z1(0, 0), x1(0, 0), 1e-12);
  EXPECT_NEAR(z1(1, 0), x1(1, 0), 1e-12);
  EXPECT_NEAR(z1(2, 0), u, 1e-12);  // u_prev slot now holds the fresh input
}

TEST(PeriodicLqr, IdenticalPhasesReduceToStationaryDlqr) {
  const Matrix a{{1.02, 0.2}, {0.0, 0.93}};
  const Matrix b{{0.1}, {1.0}};
  const Matrix q = Matrix::identity(2);
  const Matrix r{{0.3}};
  const auto stationary = dlqr(a, b, q, r);
  const std::vector<PeriodicPhase> phases(3, PeriodicPhase{a, b});
  const auto periodic = periodic_lqr(phases, q, r);
  ASSERT_TRUE(periodic.converged);
  for (const auto& k : periodic.k) {
    EXPECT_TRUE(catsched::linalg::approx_equal(k, stationary.k, 1e-7));
  }
}

TEST(PeriodicLqr, StabilizesSwitchedDelayedPhases) {
  // Unstable first-order plant under two alternating intervals with delay.
  ContinuousLTI plant;
  plant.a = Matrix{{3.0}};
  plant.b = Matrix{{1.0}};
  plant.c = Matrix{{1.0}};
  std::vector<PhaseDynamics> raw = {discretize_interval(plant, 0.05, 0.05),
                                    discretize_interval(plant, 0.12, 0.05)};
  const auto phases = augment_phases(raw);
  const std::size_t nz = phases[0].a.rows();
  const auto res = periodic_lqr(phases, Matrix::identity(nz), Matrix{{1.0}});
  ASSERT_TRUE(res.converged);

  // Monodromy of the closed loop must be Schur stable.
  Matrix mono = Matrix::identity(nz);
  for (std::size_t j = 0; j < phases.size(); ++j) {
    mono = (phases[j].a - phases[j].b * res.k[j]) * mono;
  }
  EXPECT_LT(catsched::linalg::spectral_radius(mono), 1.0);
}

TEST(PeriodicCost, MatchesLongSimulatedSum) {
  const Matrix a1{{0.9, 0.1}, {0.0, 0.8}};
  const Matrix b1{{0.0}, {1.0}};
  const Matrix a2{{0.7, 0.3}, {-0.1, 0.95}};
  const Matrix b2{{0.5}, {0.5}};
  const std::vector<PeriodicPhase> phases = {{a1, b1}, {a2, b2}};
  const Matrix q = Matrix::identity(2);
  const Matrix r{{0.4}};
  const auto res = periodic_lqr(phases, q, r);
  ASSERT_TRUE(res.converged);

  const Matrix z0 = Matrix::column({1.0, -0.5});
  const double exact = periodic_regulation_cost(phases, res.k, q, r, z0);

  // Brute-force the series until it has visibly converged.
  Matrix z = z0;
  double sum = 0.0;
  for (int step = 0; step < 4000; ++step) {
    const std::size_t j = static_cast<std::size_t>(step) % phases.size();
    const Matrix u = -(res.k[j] * z);
    const Matrix xq = z.transposed() * q * z;
    const Matrix ur = u.transposed() * r * u;
    sum += xq(0, 0) + ur(0, 0);
    z = phases[j].a * z + phases[j].b * u;
  }
  EXPECT_NEAR(exact, sum, 1e-6 * (1.0 + sum));
}

TEST(PeriodicCost, OptimalGainsBeatDetunedGains) {
  const Matrix a{{1.1, 0.2}, {0.0, 0.9}};
  const Matrix b{{0.0}, {1.0}};
  const std::vector<PeriodicPhase> phases = {{a, b}, {a, b}};
  const Matrix q = Matrix::identity(2);
  const Matrix r{{1.0}};
  const auto res = periodic_lqr(phases, q, r);
  ASSERT_TRUE(res.converged);
  const Matrix z0 = Matrix::column({1.0, 1.0});
  const double opt = periodic_regulation_cost(phases, res.k, q, r, z0);

  // Perturbed (still stabilizing) gains must not do better.
  std::vector<Matrix> detuned = res.k;
  for (auto& k : detuned) k *= 1.35;
  const double worse = periodic_regulation_cost(phases, detuned, q, r, z0);
  EXPECT_LE(opt, worse + 1e-12);
}

TEST(PeriodicCost, ThrowsOnUnstableLoop) {
  const Matrix a{{2.0}};
  const Matrix b{{1.0}};
  const std::vector<PeriodicPhase> phases = {{a, b}};
  const std::vector<Matrix> zero_gain = {Matrix{{0.0}}};
  EXPECT_THROW(periodic_cost_matrix(phases, zero_gain, Matrix{{1.0}},
                                    Matrix{{1.0}}),
               std::domain_error);
}

}  // namespace
