/// \file test_lyap.cpp
/// \brief Lyapunov/Sylvester/Stein solver tests: residual properties on
///        random stable matrices, known closed forms, and failure modes.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/eig.hpp"
#include "linalg/lyap.hpp"

namespace {

using catsched::linalg::kron;
using catsched::linalg::Matrix;
using catsched::linalg::solve_continuous_lyapunov;
using catsched::linalg::solve_discrete_lyapunov;
using catsched::linalg::solve_stein;
using catsched::linalg::solve_sylvester;
using catsched::linalg::unvec;
using catsched::linalg::vec;

Matrix random_matrix(std::mt19937& rng, std::size_t n, double scale) {
  std::uniform_real_distribution<double> dist(-scale, scale);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = dist(rng);
  }
  return m;
}

/// Scale a random matrix until Schur-stable (spectral radius < 0.9).
Matrix random_stable(std::mt19937& rng, std::size_t n) {
  Matrix m = random_matrix(rng, n, 1.0);
  const double rho = catsched::linalg::spectral_radius(m);
  if (rho > 0.0) m *= 0.9 / (rho * 1.05);
  return m;
}

Matrix random_spd(std::mt19937& rng, std::size_t n) {
  const Matrix g = random_matrix(rng, n, 1.0);
  Matrix q = g * g.transposed();
  for (std::size_t i = 0; i < n; ++i) q(i, i) += 0.1;
  return q;
}

TEST(Kron, MatchesHandComputedExample) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 5}, {6, 7}};
  const Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // 1 * b(0,1)
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // 1 * b(1,0)
  EXPECT_DOUBLE_EQ(k(0, 3), 10.0);   // 2 * b(0,1)
  EXPECT_DOUBLE_EQ(k(3, 1), 21.0);   // 3 * b(1,1)
  EXPECT_DOUBLE_EQ(k(2, 2), 0.0);    // 4 * b(0,0)
  EXPECT_DOUBLE_EQ(k(3, 3), 28.0);   // 4 * b(1,1)
}

TEST(Kron, MixedProductProperty) {
  std::mt19937 rng(7);
  const Matrix a = random_matrix(rng, 3, 1.0);
  const Matrix b = random_matrix(rng, 2, 1.0);
  const Matrix c = random_matrix(rng, 3, 1.0);
  const Matrix d = random_matrix(rng, 2, 1.0);
  // (A (x) B)(C (x) D) = (AC) (x) (BD).
  EXPECT_TRUE(catsched::linalg::approx_equal(kron(a, b) * kron(c, d),
                                             kron(a * c, b * d), 1e-9));
}

TEST(Vec, RoundTripsThroughUnvec) {
  std::mt19937 rng(11);
  const Matrix a = random_matrix(rng, 4, 2.0);
  const Matrix v = vec(a);
  ASSERT_EQ(v.rows(), 16u);
  EXPECT_TRUE(catsched::linalg::approx_equal(unvec(v, 4, 4), a, 0.0));
}

TEST(Vec, KroneckerIdentityHolds) {
  std::mt19937 rng(13);
  const Matrix a = random_matrix(rng, 3, 1.0);
  const Matrix x = random_matrix(rng, 3, 1.0);
  const Matrix b = random_matrix(rng, 3, 1.0);
  // vec(A X B) = (B^T (x) A) vec(X).
  EXPECT_TRUE(catsched::linalg::approx_equal(
      vec(a * x * b), kron(b.transposed(), a) * vec(x), 1e-9));
}

class DiscreteLyapunovSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiscreteLyapunovSweep, ResidualVanishesAndSolutionSymmetricPsd) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 5;
  const Matrix a = random_stable(rng, n);
  const Matrix q = random_spd(rng, n);
  const Matrix x = solve_discrete_lyapunov(a, q);

  const Matrix residual = a * x * a.transposed() - x + q;
  EXPECT_LT(residual.max_abs(), 1e-8 * (1.0 + x.max_abs()));
  EXPECT_TRUE(catsched::linalg::approx_equal(x, x.transposed(), 1e-8));
  // X = sum A^k Q (A^T)^k with Q SPD => X SPD => positive diagonal.
  for (std::size_t i = 0; i < n; ++i) EXPECT_GT(x(i, i), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomStable, DiscreteLyapunovSweep,
                         ::testing::Range(0, 12));

TEST(DiscreteLyapunov, MatchesSeriesSumForScalar) {
  // a = 1/2, q = 3: X = q / (1 - a^2) = 4.
  const Matrix a{{0.5}};
  const Matrix q{{3.0}};
  const Matrix x = solve_discrete_lyapunov(a, q);
  EXPECT_NEAR(x(0, 0), 4.0, 1e-12);
}

TEST(DiscreteLyapunov, ThrowsOnUnitEigenvaluePair) {
  const Matrix a{{1.0, 0.0}, {0.0, 0.5}};  // lambda1 * lambda1 = 1
  const Matrix q = Matrix::identity(2);
  EXPECT_THROW(solve_discrete_lyapunov(a, q), std::domain_error);
}

TEST(DiscreteLyapunov, ThrowsOnDimensionMismatch) {
  EXPECT_THROW(
      solve_discrete_lyapunov(Matrix::identity(2), Matrix::identity(3)),
      std::invalid_argument);
}

class ContinuousLyapunovSweep : public ::testing::TestWithParam<int> {};

TEST_P(ContinuousLyapunovSweep, ResidualVanishesForHurwitzA) {
  std::mt19937 rng(100 + static_cast<unsigned>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 4;
  Matrix a = random_matrix(rng, n, 1.0);
  // Shift to make Hurwitz: A - (rho+1) I has eigenvalues with Re < 0...
  // use the cheap bound rho <= ||A||_inf.
  const double shift = a.norm_inf() + 1.0;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  const Matrix q = random_spd(rng, n);
  const Matrix x = solve_continuous_lyapunov(a, q);

  const Matrix residual = a * x + x * a.transposed() + q;
  EXPECT_LT(residual.max_abs(), 1e-8 * (1.0 + x.max_abs()));
  EXPECT_TRUE(catsched::linalg::approx_equal(x, x.transposed(), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(RandomHurwitz, ContinuousLyapunovSweep,
                         ::testing::Range(0, 8));

TEST(Sylvester, SolvesRandomSystem) {
  std::mt19937 rng(42);
  const Matrix a = random_matrix(rng, 3, 1.0) + 4.0 * Matrix::identity(3);
  const Matrix b = random_matrix(rng, 2, 1.0) + 4.0 * Matrix::identity(2);
  Matrix c(3, 2);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) c(i, j) = dist(rng);
  }
  const Matrix x = solve_sylvester(a, b, c);
  EXPECT_LT((a * x + x * b - c).max_abs(), 1e-9);
}

TEST(Sylvester, ThrowsWhenSpectraOverlapNegated) {
  // A and -B share eigenvalue 1 -> singular operator.
  const Matrix a{{1.0}};
  const Matrix b{{-1.0}};
  const Matrix c{{1.0}};
  EXPECT_THROW(solve_sylvester(a, b, c), std::domain_error);
}

TEST(Stein, SolvesRandomSystemAndMatchesLyapunovSpecialCase) {
  std::mt19937 rng(17);
  const Matrix a = random_stable(rng, 3);
  const Matrix q = random_spd(rng, 3);
  // Stein with B = A^T and C = Q reduces to the discrete Lyapunov equation.
  const Matrix x1 = solve_stein(a, a.transposed(), q);
  const Matrix x2 = solve_discrete_lyapunov(a, q);
  EXPECT_TRUE(catsched::linalg::approx_equal(x1, x2, 1e-8));
  EXPECT_LT((a * x1 * a.transposed() - x1 + q).max_abs(), 1e-8);
}

}  // namespace
