/// \file test_matrix_sbo.cpp
/// \brief Differential tests for the small-buffer-optimized Matrix storage
///        (ISSUE 3): every operation must produce bit-identical results
///        whether its operands live in the inline buffer or in the
///        pre-refactor heap ("spilled") layout, with the spill/inline
///        boundary crossed in both directions. Storage is an
///        implementation detail; arithmetic must never observe it.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <random>
#include <utility>
#include <vector>

#include "linalg/eig.hpp"
#include "linalg/expm.hpp"
#include "linalg/lu.hpp"
#include "linalg/lyap.hpp"
#include "linalg/matrix.hpp"

using namespace catsched::linalg;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double scale = 1.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-scale, scale);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = d(rng);
  }
  return m;
}

/// Copy of \p m pinned into the pre-refactor heap layout: reserve() beyond
/// the inline capacity forces the spill no matter how small the value is,
/// and the move out of the factory steals the heap block, so the result
/// stays spilled at the call site.
Matrix spilled(const Matrix& m) {
  Matrix s = m;
  s.reserve(Matrix::kInlineCapacity + 1);
  return s;
}

/// Bit-level equality: dimensions plus memcmp over the payload, so even
/// -0.0 vs +0.0 or NaN-payload differences would be caught (stronger than
/// operator==, which uses double comparison).
::testing::AssertionResult bit_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "dims " << a.rows() << "x" << a.cols() << " vs " << b.rows()
           << "x" << b.cols();
  }
  if (a.size() != 0 &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "payload differs";
  }
  return ::testing::AssertionSuccess();
}

TEST(MatrixSbo, StorageModeFollowsSize) {
  // 8x8 = 64 entries is the last inline size; 9x9 must spill.
  EXPECT_TRUE(Matrix(8, 8).is_inline());
  EXPECT_FALSE(Matrix(9, 9).is_inline());
  EXPECT_TRUE(Matrix(1, 64).is_inline());
  EXPECT_FALSE(Matrix(1, 65).is_inline());
  EXPECT_TRUE(Matrix().is_inline());
}

TEST(MatrixSbo, SpillHelperForcesHeapWithoutChangingValue) {
  for (std::size_t n = 1; n <= 12; ++n) {
    const Matrix a = random_matrix(n, n, 100 + n);
    const Matrix s = spilled(a);
    EXPECT_EQ(a.is_inline(), n <= 8);
    EXPECT_FALSE(s.is_inline());
    EXPECT_TRUE(bit_equal(a, s));
    EXPECT_TRUE(a == s);
  }
}

// The core differential: run the same randomized operation once on inline
// operands and once on spilled operands; outcomes must be bit-identical.
TEST(MatrixSbo, ArithmeticIsStorageInvariant) {
  for (std::size_t n = 1; n <= 12; ++n) {
    const Matrix a = random_matrix(n, n, 2 * n);
    const Matrix b = random_matrix(n, n, 2 * n + 1);
    const Matrix sa = spilled(a);
    const Matrix sb = spilled(b);

    EXPECT_TRUE(bit_equal(a * b, sa * sb)) << "multiply n=" << n;
    EXPECT_TRUE(bit_equal(a + b, sa + sb)) << "add n=" << n;
    EXPECT_TRUE(bit_equal(a - b, sa - sb)) << "sub n=" << n;
    EXPECT_TRUE(bit_equal(a * 3.25, sa * 3.25)) << "scale n=" << n;
    EXPECT_TRUE(bit_equal(-a, -sa)) << "negate n=" << n;
    EXPECT_TRUE(bit_equal(a.transposed(), sa.transposed())) << "T n=" << n;
    EXPECT_EQ(a.norm(), sa.norm());
    EXPECT_EQ(a.norm_1(), sa.norm_1());
    EXPECT_EQ(a.norm_inf(), sa.norm_inf());
    EXPECT_EQ(a.max_abs(), sa.max_abs());
    EXPECT_EQ(a.trace(), sa.trace());
    EXPECT_EQ(dot(a.col(0), b.col(0)), dot(sa.col(0), sb.col(0)));
  }
}

TEST(MatrixSbo, LuSolveInverseDeterminantAreStorageInvariant) {
  for (std::size_t n = 1; n <= 12; ++n) {
    // Diagonally dominated so every instance is comfortably invertible.
    Matrix a = random_matrix(n, n, 40 + n);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;
    const Matrix rhs = random_matrix(n, 2, 80 + n);
    const Matrix sa = spilled(a);
    const Matrix srhs = spilled(rhs);

    const LU lu(a);
    const LU slu(sa);
    EXPECT_EQ(lu.singular(), slu.singular());
    EXPECT_EQ(lu.determinant(), slu.determinant()) << "det n=" << n;
    EXPECT_TRUE(bit_equal(lu.solve(rhs), slu.solve(srhs))) << "solve n=" << n;
    EXPECT_TRUE(bit_equal(lu.inverse(), slu.inverse())) << "inv n=" << n;
  }
}

TEST(MatrixSbo, ExpmIsStorageInvariantAcrossPadeDegrees) {
  // Scales chosen to hit the degree-3/5/7/9 branches and the degree-13
  // scaling-and-squaring path of Higham's method.
  for (const double scale : {0.005, 0.1, 0.5, 1.5, 20.0}) {
    for (const std::size_t n : {1u, 2u, 4u, 8u, 9u, 12u}) {
      const Matrix a =
          random_matrix(n, n, 7 * n + static_cast<std::uint64_t>(scale * 10),
                        scale);
      EXPECT_TRUE(bit_equal(expm(a), expm(spilled(a))))
          << "expm n=" << n << " scale=" << scale;
      const auto p = expm_with_integral(a, 1e-3);
      const auto sp = expm_with_integral(spilled(a), 1e-3);
      EXPECT_TRUE(bit_equal(p.ad, sp.ad));
      EXPECT_TRUE(bit_equal(p.phi, sp.phi));
    }
  }
}

TEST(MatrixSbo, EigenvaluesAreStorageInvariant) {
  for (std::size_t n = 1; n <= 12; ++n) {
    const Matrix a = random_matrix(n, n, 300 + n);
    const auto ev = eigenvalues(a);
    const auto sev = eigenvalues(spilled(a));
    ASSERT_EQ(ev.size(), sev.size());
    for (std::size_t i = 0; i < ev.size(); ++i) {
      EXPECT_EQ(ev[i].real(), sev[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(ev[i].imag(), sev[i].imag()) << "n=" << n << " i=" << i;
    }
    EXPECT_EQ(spectral_radius(a), spectral_radius(spilled(a)));
  }
}

TEST(MatrixSbo, LyapunovSolversAreStorageInvariant) {
  for (const std::size_t n : {2u, 4u, 8u}) {
    Matrix a = random_matrix(n, n, 500 + n, 0.3);
    const Matrix q = Matrix::identity(n);
    // kron() lifts to n^2 x n^2, so n=8 exercises inline inputs with a
    // spilled 64x64 solve inside — the boundary crossed mid-algorithm.
    EXPECT_TRUE(bit_equal(solve_discrete_lyapunov(a, q),
                          solve_discrete_lyapunov(spilled(a), spilled(q))));
    EXPECT_TRUE(bit_equal(solve_continuous_lyapunov(a, q),
                          solve_continuous_lyapunov(spilled(a), spilled(q))));
  }
}

// Joins across the boundary in both directions: inline inputs whose
// concatenation spills, and a spilled input whose extracted block is
// inline again.
TEST(MatrixSbo, JoinsAndBlocksCrossTheBoundaryBothWays) {
  for (std::size_t n = 1; n <= 12; ++n) {
    const Matrix a = random_matrix(n, n, 700 + n);
    const Matrix b = random_matrix(n, n, 800 + n);
    const Matrix h = Matrix::hcat(a, b);
    const Matrix sh = Matrix::hcat(spilled(a), spilled(b));
    EXPECT_TRUE(bit_equal(h, sh)) << "hcat n=" << n;
    EXPECT_EQ(h.is_inline(), h.size() <= Matrix::kInlineCapacity);
    const Matrix v = Matrix::vcat(a, b);
    EXPECT_TRUE(bit_equal(v, Matrix::vcat(spilled(a), spilled(b))));

    // Inline 6x6 hcat'ed with itself spills (6x12 = 72 > 64)...
    if (n == 6) {
      EXPECT_FALSE(h.is_inline());
    }
    // ...and a block carved out of a spilled matrix is inline again.
    const Matrix blk = sh.block(0, 0, n, n);
    EXPECT_TRUE(bit_equal(blk, a));
    EXPECT_EQ(blk.is_inline(), n <= 8);

    Matrix big = spilled(Matrix(n, n, 0.0));
    big.set_block(0, 0, a);
    EXPECT_TRUE(bit_equal(big, spilled(a)));
  }
}

TEST(MatrixSbo, IntoPrimitivesMatchOperatorFormsInEitherStorage) {
  for (std::size_t n = 1; n <= 12; ++n) {
    const Matrix a = random_matrix(n, n, 900 + n);
    const Matrix b = random_matrix(n, n, 1000 + n);
    const Matrix expect = a * b;

    Matrix out;  // inline workspace, re-dimensioned by the primitive
    multiply_into(out, a, b);
    EXPECT_TRUE(bit_equal(out, expect));

    Matrix sout = spilled(Matrix(n, n, 0.0));  // spilled workspace, reused
    multiply_into(sout, spilled(a), spilled(b));
    EXPECT_FALSE(sout.is_inline());
    EXPECT_TRUE(bit_equal(sout, expect));

    // Accumulation rounds product-by-product, so there is no operator
    // identity to compare against — pin storage invariance instead:
    // the same accumulation from inline and spilled operands/workspaces.
    Matrix acc = a * b;
    multiply_add_into(acc, a, b);
    Matrix sacc = spilled(a * b);
    multiply_add_into(sacc, spilled(a), spilled(b));
    EXPECT_TRUE(bit_equal(acc, sacc));

    Matrix y = a;
    axpy_into(y, 2.5, b);
    Matrix sy = spilled(a);
    axpy_into(sy, 2.5, spilled(b));
    EXPECT_TRUE(bit_equal(y, sy));
  }
}

// Value semantics across the boundary: copies/moves between inline and
// spilled objects must preserve values exactly and leave sources valid.
TEST(MatrixSbo, CopyAndMoveSemanticsAcrossTheBoundary) {
  const Matrix small = random_matrix(3, 3, 42);
  const Matrix large = random_matrix(10, 10, 43);

  // Copy construction from each mode.
  Matrix c1 = small;
  Matrix c2 = spilled(small);
  Matrix c3 = large;
  EXPECT_TRUE(c1.is_inline());
  EXPECT_FALSE(c2.is_inline());
  EXPECT_FALSE(c3.is_inline());
  EXPECT_TRUE(bit_equal(c1, c2));
  EXPECT_TRUE(bit_equal(c3, large));

  // Assignment inline -> spilled object: storage may stay heap, values win.
  Matrix t = spilled(small);
  t = large;
  EXPECT_TRUE(bit_equal(t, large));
  // Assignment spilled -> inline object grows it.
  Matrix u = small;
  u = spilled(large);
  EXPECT_TRUE(bit_equal(u, large));

  // Move of a spilled matrix steals the heap block and empties the source.
  Matrix ms = spilled(large);
  Matrix stolen = std::move(ms);
  EXPECT_FALSE(stolen.is_inline());
  EXPECT_TRUE(bit_equal(stolen, large));
  EXPECT_TRUE(ms.empty());  // NOLINT(bugprone-use-after-move): documented

  // Move of an inline matrix copies elements (nothing to steal).
  Matrix mi = small;
  Matrix moved = std::move(mi);
  EXPECT_TRUE(moved.is_inline());
  EXPECT_TRUE(bit_equal(moved, small));

  // Self-assignment is a no-op in both modes.
  Matrix self = small;
  self = *&self;
  EXPECT_TRUE(bit_equal(self, small));
  Matrix sself = spilled(small);
  sself = *&sself;
  EXPECT_TRUE(bit_equal(sself, small));
}

TEST(MatrixSbo, ReserveAndResizeReuseStorage) {
  Matrix m = random_matrix(4, 4, 77);
  const Matrix orig = m;
  m.reserve(2);  // below current capacity: no-op
  EXPECT_TRUE(m.is_inline());
  EXPECT_TRUE(bit_equal(m, orig));
  m.reserve(Matrix::kInlineCapacity + 8);  // spill, preserving contents
  EXPECT_FALSE(m.is_inline());
  EXPECT_TRUE(bit_equal(m, orig));

  // resize within capacity keeps the allocation (workspace contract).
  const std::size_t cap = m.capacity();
  m.resize(2, 3);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);

  // An inline workspace re-dimensioned repeatedly never allocates.
  Matrix w;
  for (std::size_t n = 1; n <= 8; ++n) {
    w.resize(n, n);
    EXPECT_TRUE(w.is_inline());
    EXPECT_EQ(w.capacity(), Matrix::kInlineCapacity);
  }
}

}  // namespace
