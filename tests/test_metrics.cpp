/// \file test_metrics.cpp
/// \brief Step-metric tests against analytically known trajectories
///        (first/second-order responses, hand-built traces) and argument
///        validation.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "control/metrics.hpp"

namespace {

using catsched::control::step_metrics;
using catsched::control::StepMetrics;

/// Sampled first-order response y = r (1 - e^{-t/tau}).
std::pair<std::vector<double>, std::vector<double>> first_order(
    double r, double tau, double horizon, double dt) {
  std::vector<double> t, y;
  for (double s = 0.0; s <= horizon; s += dt) {
    t.push_back(s);
    y.push_back(r * (1.0 - std::exp(-s / tau)));
  }
  return {t, y};
}

TEST(StepMetrics, FirstOrderRiseTimeMatchesTheory) {
  // 10-90% rise time of a first-order lag is tau * ln 9.
  const double tau = 0.2;
  auto [t, y] = first_order(1.0, tau, 3.0, 1e-4);
  const StepMetrics m = step_metrics(t, y, 1.0);
  EXPECT_TRUE(m.rise_reached);
  EXPECT_NEAR(m.rise_time, tau * std::log(9.0), 1e-3);
  EXPECT_NEAR(m.overshoot_pct, 0.0, 1e-9);  // monotone response
  EXPECT_NEAR(m.undershoot_pct, 0.0, 1e-9);
  EXPECT_LT(m.steady_state_error, 1e-5);
}

TEST(StepMetrics, FirstOrderIaeMatchesClosedForm) {
  // IAE of r(1 - e^{-t/tau}) over [0, inf) is r * tau.
  const double tau = 0.1, r = 2.0;
  auto [t, y] = first_order(r, tau, 2.5, 1e-4);
  const StepMetrics m = step_metrics(t, y, r);
  EXPECT_NEAR(m.iae, r * tau, 1e-3);
  // ISE closed form: r^2 tau / 2.
  EXPECT_NEAR(m.ise, r * r * tau / 2.0, 1e-3);
}

TEST(StepMetrics, DetectsOvershootOfDampedSecondOrder) {
  // y = 1 - e^{-zeta wn t} (cos(wd t) + zeta/sqrt(1-zeta^2) sin(wd t)),
  // peak overshoot = exp(-pi zeta / sqrt(1 - zeta^2)).
  const double zeta = 0.4, wn = 10.0;
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  std::vector<double> t, y;
  for (double s = 0.0; s <= 3.0; s += 1e-4) {
    t.push_back(s);
    y.push_back(1.0 - std::exp(-zeta * wn * s) *
                          (std::cos(wd * s) +
                           zeta / std::sqrt(1.0 - zeta * zeta) *
                               std::sin(wd * s)));
  }
  const StepMetrics m = step_metrics(t, y, 1.0);
  const double theory = 100.0 * std::exp(-M_PI * zeta /
                                         std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(m.overshoot_pct, theory, 0.1);
  // Peak time = pi / wd.
  EXPECT_NEAR(m.peak_time, M_PI / wd, 1e-3);
}

TEST(StepMetrics, NegativeStepIsMeasuredSymmetrically) {
  // Step from 1 down to 0: same first-order shape mirrored.
  const double tau = 0.2;
  std::vector<double> t, y;
  for (double s = 0.0; s <= 3.0; s += 1e-4) {
    t.push_back(s);
    y.push_back(std::exp(-s / tau));
  }
  const StepMetrics m = step_metrics(t, y, 0.0, 1.0);
  EXPECT_TRUE(m.rise_reached);
  EXPECT_NEAR(m.rise_time, tau * std::log(9.0), 1e-3);
  EXPECT_NEAR(m.overshoot_pct, 0.0, 1e-9);
}

TEST(StepMetrics, UndershootOfNonMinimumPhaseResponse) {
  // Hand-built trace that dips to -0.2 before rising to 1.
  const std::vector<double> t{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<double> y{0.0, -0.2, 0.1, 0.6, 0.95, 1.0};
  const StepMetrics m = step_metrics(t, y, 1.0);
  EXPECT_NEAR(m.undershoot_pct, 20.0, 1e-9);
}

TEST(StepMetrics, UnreachedRiseReportsInfinity) {
  const std::vector<double> t{0.0, 0.1, 0.2};
  const std::vector<double> y{0.0, 0.1, 0.2};  // never reaches 0.9
  const StepMetrics m = step_metrics(t, y, 1.0);
  EXPECT_FALSE(m.rise_reached);
  EXPECT_TRUE(std::isinf(m.rise_time));
  EXPECT_NEAR(m.steady_state_error, 0.8, 1e-12);
}

TEST(StepMetrics, ItaeWeightsLateErrorsMore) {
  // Two traces with the same IAE but the error concentrated early vs late:
  // ITAE must rank the late-error trace worse.
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> early{0.0, 1.0, 1.0, 1.0};
  const std::vector<double> late{1.0, 1.0, 0.0, 1.0};
  const auto m_early = step_metrics(t, early, 1.0, 0.0);
  const auto m_late = step_metrics(t, late, 1.0, 0.5);
  EXPECT_GT(m_late.itae, m_early.itae);
}

TEST(StepMetrics, RejectsBadArguments) {
  const std::vector<double> t{0.0, 0.1};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_THROW(step_metrics(t, {0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(step_metrics({0.0}, {0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(step_metrics({0.1, 0.1}, y, 1.0), std::invalid_argument);
  EXPECT_THROW(step_metrics(t, y, 0.0, 0.0), std::invalid_argument);
}

class MetricsBandSweep : public ::testing::TestWithParam<double> {};

TEST_P(MetricsBandSweep, FirstOrderMetricsScaleWithReference) {
  // All normalized metrics must be invariant to the reference scale.
  const double scale = GetParam();
  auto [t1, y1] = first_order(1.0, 0.15, 2.0, 1e-3);
  auto [t2, y2] = first_order(scale, 0.15, 2.0, 1e-3);
  const auto m1 = step_metrics(t1, y1, 1.0);
  const auto m2 = step_metrics(t2, y2, scale);
  EXPECT_NEAR(m1.rise_time, m2.rise_time, 1e-9);
  EXPECT_NEAR(m1.overshoot_pct, m2.overshoot_pct, 1e-9);
  EXPECT_NEAR(m1.steady_state_error, m2.steady_state_error, 1e-9);
  // IAE scales linearly, ISE quadratically.
  EXPECT_NEAR(m2.iae, scale * m1.iae, 1e-6 * scale);
  EXPECT_NEAR(m2.ise, scale * scale * m1.ise, 1e-6 * scale * scale);
}

INSTANTIATE_TEST_SUITE_P(Scales, MetricsBandSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 120.0));

}  // namespace
