/// \file test_mimo.cpp
/// \brief MIMO extension tests: discretization consistency with the SISO
///        path, steady-state targets, LQR tracking of a two-input
///        two-output plant under schedule-induced switching.

#include <gtest/gtest.h>

#include <cmath>

#include "control/c2d.hpp"
#include "control/mimo.hpp"
#include "linalg/eig.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::design_mimo_controller;
using catsched::control::discretize_interval;
using catsched::control::discretize_mimo;
using catsched::control::MimoContinuous;
using catsched::control::MimoDesignOptions;
using catsched::control::simulate_mimo;
using catsched::control::steady_state_target;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

/// Two decoupled first-order lags with cross-coupling eps.
MimoContinuous coupled_tanks(double eps) {
  MimoContinuous p;
  p.a = Matrix{{-1.0, eps}, {eps, -1.5}};
  p.b = Matrix{{1.0, 0.0}, {0.0, 0.8}};
  p.c = Matrix::identity(2);
  return p;
}

TEST(MimoDiscretize, MatchesSisoPathForSingleInput) {
  // A SISO plant pushed through both the SISO and the MIMO discretizer
  // must produce identical matrices.
  ContinuousLTI siso;
  siso.a = Matrix{{0.0, 1.0}, {-2.0, -3.0}};
  siso.b = Matrix{{0.0}, {1.0}};
  siso.c = Matrix{{1.0, 0.0}};
  MimoContinuous mimo;
  mimo.a = siso.a;
  mimo.b = siso.b;
  mimo.c = siso.c;

  const double h = 0.02, tau = 0.012;
  const auto ph_siso = discretize_interval(siso, h, tau);
  const auto ph_mimo = discretize_mimo(mimo, h, tau);
  EXPECT_TRUE(catsched::linalg::approx_equal(ph_siso.ad, ph_mimo.ad, 1e-12));
  EXPECT_TRUE(catsched::linalg::approx_equal(ph_siso.b1, ph_mimo.b1, 1e-12));
  EXPECT_TRUE(catsched::linalg::approx_equal(ph_siso.b2, ph_mimo.b2, 1e-12));
}

TEST(MimoDiscretize, DelaySplitsInputEffectExactly) {
  // B1 + B2 must equal the full-interval ZOH input matrix for any tau.
  const MimoContinuous p = coupled_tanks(0.3);
  const double h = 0.05;
  const auto full = discretize_mimo(p, h, 0.0);
  for (double tau : {0.0, 0.01, 0.025, 0.05}) {
    const auto ph = discretize_mimo(p, h, tau);
    EXPECT_TRUE(catsched::linalg::approx_equal(ph.b1 + ph.b2,
                                               full.b1 + full.b2, 1e-12))
        << "tau = " << tau;
  }
}

TEST(MimoDiscretize, RejectsBadInterval) {
  const MimoContinuous p = coupled_tanks(0.0);
  EXPECT_THROW(discretize_mimo(p, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(discretize_mimo(p, 0.01, 0.02), std::invalid_argument);
  EXPECT_THROW(discretize_mimo(p, 0.01, -0.001), std::invalid_argument);
}

TEST(MimoTarget, HoldsReferenceAtEquilibrium) {
  const MimoContinuous p = coupled_tanks(0.3);
  const Matrix r = Matrix::column({1.0, -0.5});
  const auto target = steady_state_target(p, r);
  // A x + B u = 0 and C x = r.
  EXPECT_LT((p.a * target.x + p.b * target.u).max_abs(), 1e-9);
  EXPECT_LT((p.c * target.x - r).max_abs(), 1e-9);
}

TEST(MimoTarget, ContinuousEquilibriumIsExactForEveryDiscretization) {
  const MimoContinuous p = coupled_tanks(0.4);
  const Matrix r = Matrix::column({0.7, 0.2});
  const auto target = steady_state_target(p, r);
  for (double h : {0.001, 0.02, 0.3}) {
    for (double tau_frac : {0.0, 0.5, 1.0}) {
      const auto ph = discretize_mimo(p, h, tau_frac * h);
      const Matrix x_next =
          ph.ad * target.x + ph.b1 * target.u + ph.b2 * target.u;
      EXPECT_LT((x_next - target.x).max_abs(), 1e-9)
          << "h=" << h << " tau_frac=" << tau_frac;
    }
  }
}

TEST(MimoTarget, ThrowsWhenUnreachable) {
  // Output channel with no input authority at DC: equilibrium forces
  // x2 = 0 (row 2 of A x + B u = 0 reads -x2 = 0) while C x = x2 must be 1.
  MimoContinuous p;
  p.a = Matrix{{-1.0, 0.0}, {0.0, -1.0}};
  p.b = Matrix{{1.0}, {0.0}};
  p.c = Matrix{{0.0, 1.0}};
  EXPECT_THROW(steady_state_target(p, Matrix::column({1.0})),
               std::domain_error);
}

class MimoTrackingSweep : public ::testing::TestWithParam<double> {};

TEST_P(MimoTrackingSweep, TracksBothChannelsUnderSwitchedTiming) {
  const MimoContinuous p = coupled_tanks(GetParam());
  // Schedule-style non-uniform intervals with delay = execution time.
  const std::vector<Interval> intervals = {{0.020, 0.020, false},
                                           {0.012, 0.012, true},
                                           {0.046, 0.012, true}};
  const Matrix r = Matrix::column({1.0, 0.6});
  const auto ctrl = design_mimo_controller(p, intervals, r);
  ASSERT_TRUE(ctrl.converged);
  const auto sim = simulate_mimo(p, intervals, ctrl, r, 8.0);
  EXPECT_TRUE(sim.settled) << "coupling " << GetParam();
  EXPECT_LT(sim.settling_time, 8.0);
  // Final outputs on both channels inside the band.
  const auto& y_end = sim.y.back();
  EXPECT_NEAR(y_end[0], 1.0, 0.02);
  EXPECT_NEAR(y_end[1], 0.6, 0.02 * 0.6 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Couplings, MimoTrackingSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8));

TEST(MimoDesign, HigherInputWeightLowersPeakInput) {
  const MimoContinuous p = coupled_tanks(0.3);
  const std::vector<Interval> intervals = {{0.02, 0.02, false},
                                           {0.05, 0.012, true}};
  const Matrix r = Matrix::column({1.0, 1.0});
  MimoDesignOptions cheap;
  cheap.r_input = 0.01;
  MimoDesignOptions pricey;
  pricey.r_input = 10.0;
  const auto sim_cheap =
      simulate_mimo(p, intervals, design_mimo_controller(p, intervals, r,
                                                         cheap),
                    r, 6.0);
  const auto sim_pricey =
      simulate_mimo(p, intervals, design_mimo_controller(p, intervals, r,
                                                         pricey),
                    r, 6.0);
  EXPECT_GT(sim_cheap.u_max_abs, sim_pricey.u_max_abs);
}

TEST(MimoSim, RejectsMismatchedGainCount) {
  const MimoContinuous p = coupled_tanks(0.1);
  const std::vector<Interval> intervals = {{0.02, 0.02, false}};
  const Matrix r = Matrix::column({1.0, 1.0});
  auto ctrl = design_mimo_controller(p, intervals, r);
  ctrl.k.push_back(ctrl.k.front());  // now 2 gains vs 1 interval
  EXPECT_THROW(simulate_mimo(p, intervals, ctrl, r, 1.0),
               std::invalid_argument);
}

TEST(MimoValidate, CatchesDimensionErrors) {
  MimoContinuous p;
  p.a = Matrix{{1.0, 0.0}};  // not square
  p.b = Matrix{{1.0}, {1.0}};
  p.c = Matrix{{1.0, 0.0}};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = coupled_tanks(0.0);
  p.b = Matrix(1, 1, 1.0);  // wrong row count
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
