/// \file test_multicore.cpp
/// \brief Multi-core extension tests: partition canonicalization and
///        enumeration (Bell-number counts), per-core co-design on a small
///        synthetic system, and the single-core-vs-dual-core comparison.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/case_study.hpp"
#include "core/multicore_codesign.hpp"

namespace {

using catsched::core::Application;
using catsched::core::evaluate_assignment;
using catsched::core::multicore_codesign;
using catsched::core::MulticoreOptions;
using catsched::core::SystemModel;
using catsched::sched::CoreAssignment;
using catsched::sched::enumerate_assignments;
namespace cache = catsched::cache;
namespace control = catsched::control;
namespace linalg = catsched::linalg;

TEST(CoreAssignment, CanonicalizesCorePermutations) {
  const CoreAssignment a({1, 0, 1});
  const CoreAssignment b({0, 1, 0});
  EXPECT_EQ(a, b);  // same partition, different labels
  EXPECT_EQ(a.num_cores(), 2u);
  EXPECT_EQ(a.core_of(0), a.core_of(2));
}

TEST(CoreAssignment, GroupsAndLabel) {
  const CoreAssignment a({0, 1, 0});
  const auto groups = a.apps_per_core();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1}));
  EXPECT_EQ(a.to_string(), "{C1,C3 | C2}");
}

TEST(EnumerateAssignments, MatchesBellNumbers) {
  // Partitions of n elements into any number of blocks: Bell numbers
  // 1, 2, 5, 15; capping cores restricts to partial sums.
  EXPECT_EQ(enumerate_assignments(1, 4).size(), 1u);
  EXPECT_EQ(enumerate_assignments(2, 4).size(), 2u);
  EXPECT_EQ(enumerate_assignments(3, 4).size(), 5u);
  EXPECT_EQ(enumerate_assignments(4, 4).size(), 15u);
  // At most 2 cores: Stirling S(3,1) + S(3,2) = 1 + 3 = 4.
  EXPECT_EQ(enumerate_assignments(3, 2).size(), 4u);
  // One core: only the trivial partition.
  EXPECT_EQ(enumerate_assignments(3, 1).size(), 1u);
}

TEST(EnumerateAssignments, AllDistinctAndCanonical) {
  const auto all = enumerate_assignments(4, 3);
  std::set<std::vector<std::size_t>> seen;
  for (const auto& a : all) {
    EXPECT_LE(a.num_cores(), 3u);
    EXPECT_TRUE(seen.insert(a.mapping()).second) << "duplicate partition";
    EXPECT_EQ(a.mapping()[0], 0u);  // canonical form starts at core 0
  }
}

TEST(EnumerateAssignments, RejectsDegenerateArguments) {
  EXPECT_THROW(enumerate_assignments(0, 2), std::invalid_argument);
  EXPECT_THROW(enumerate_assignments(2, 0), std::invalid_argument);
}

/// Small two-app system (mirrors test_core's fixture) for driver tests.
SystemModel tiny_system() {
  SystemModel sys;
  sys.cache_config = catsched::core::date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();
  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

MulticoreOptions fast_mc_options() {
  MulticoreOptions o;
  o.design = catsched::core::date18_design_options();
  o.design.pso.particles = 12;
  o.design.pso.iterations = 20;
  o.design.pso.stall_iterations = 8;
  o.design.pso_restarts = 1;
  o.design.scale_budget_with_dims = false;
  o.hybrid.max_value = 8;
  return o;
}

TEST(MulticoreCodesign, SingleCoreAssignmentMatchesBaseline) {
  const SystemModel sys = tiny_system();
  const auto eval = evaluate_assignment(
      sys, CoreAssignment::single_core(sys.num_apps()), fast_mc_options());
  EXPECT_TRUE(eval.feasible);
  ASSERT_EQ(eval.core_weight.size(), 1u);
  EXPECT_NEAR(eval.core_weight[0], 1.0, 1e-12);
  EXPECT_NEAR(eval.pall, eval.core_pall[0], 1e-12);
  EXPECT_GT(eval.pall, 0.0);
}

TEST(MulticoreCodesign, SweepEvaluatesEveryPartitionAndPicksArgmax) {
  // Note what this does NOT assert: private cores do not automatically beat
  // a shared core. An app alone on a core samples uniformly with a full
  // one-sample delay (tau = h on every interval), while the optimized
  // shared schedule exploits non-uniform sampling with a short-delay long
  // interval -- on this system the shared-core optimum genuinely wins (see
  // EXPERIMENTS.md). The driver's job is to measure both and pick the max.
  const SystemModel sys = tiny_system();
  const auto opts = fast_mc_options();
  const auto result = multicore_codesign(sys, opts);
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.all.size(), 2u);  // {A,B} and {A | B}

  const auto& single = result.all[0];
  const auto& dual = result.all[1];
  ASSERT_EQ(single.schedule.assignment.num_cores(), 1u);
  ASSERT_EQ(dual.schedule.assignment.num_cores(), 2u);
  EXPECT_TRUE(single.feasible);
  EXPECT_TRUE(dual.feasible);
  EXPECT_GT(dual.pall, 0.0);

  // The reported best is the argmax over all feasible partitions.
  double best_pall = -1.0;
  for (const auto& e : result.all) {
    if (e.feasible) best_pall = std::max(best_pall, e.pall);
  }
  EXPECT_NEAR(result.best.pall, best_pall, 1e-12);

  // Global pall decomposes as sum_c W_c * Pall_c on every partition.
  for (const auto& e : result.all) {
    double recombined = 0.0;
    for (std::size_t c = 0; c < e.core_pall.size(); ++c) {
      recombined += e.core_weight[c] * e.core_pall[c];
    }
    EXPECT_NEAR(e.pall, recombined, 1e-12);
  }
  // Per-app settling recorded for every app under the best partition.
  for (double s : result.best.settling) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(MulticoreCodesign, RejectsMismatchedAssignment) {
  const SystemModel sys = tiny_system();
  EXPECT_THROW(
      evaluate_assignment(sys, CoreAssignment({0, 1, 0}), fast_mc_options()),
      std::invalid_argument);
}

TEST(MulticoreSchedule, ValidateCatchesDimensionMismatch) {
  catsched::sched::MulticoreSchedule ms;
  ms.assignment = CoreAssignment({0, 1});
  ms.per_core = {catsched::sched::PeriodicSchedule({1, 1}),
                 catsched::sched::PeriodicSchedule({1})};
  EXPECT_THROW(ms.validate(), std::invalid_argument);
  ms.per_core = {catsched::sched::PeriodicSchedule({1}),
                 catsched::sched::PeriodicSchedule({1})};
  EXPECT_NO_THROW(ms.validate());
}

}  // namespace
