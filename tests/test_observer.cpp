/// \file test_observer.cpp
/// \brief Observer tests: dual-Ackermann pole placement of the error
///        dynamics, deadbeat convergence in l steps, output-feedback
///        tracking under switched timing, and the separation principle.

#include <gtest/gtest.h>

#include <cmath>

#include "control/design.hpp"
#include "control/observer.hpp"
#include "linalg/eig.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::design_deadbeat_observer;
using catsched::control::design_observer;
using catsched::control::design_switched_observer;
using catsched::control::discretize_interval;
using catsched::control::discretize_phases;
using catsched::control::output_feedback_spectral_radius;
using catsched::control::PhaseDynamics;
using catsched::control::PhaseGains;
using catsched::control::simulate_output_feedback;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

ContinuousLTI servo_plant() {
  ContinuousLTI p;
  p.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
  p.b = Matrix{{0.0}, {200.0}};
  p.c = Matrix{{1.0, 0.0}};
  return p;
}

TEST(Observer, PlacesErrorPolesExactly) {
  const auto ph = discretize_interval(servo_plant(), 0.01, 0.01);
  const Matrix c{{1.0, 0.0}};
  const std::vector<std::complex<double>> want{{0.3, 0.0}, {0.5, 0.0}};
  const Matrix l = design_observer(ph.ad, c, want);
  const auto got = catsched::linalg::eigenvalues(ph.ad - l * c);
  // Both requested poles must appear (order-free match).
  for (const auto& w : want) {
    bool found = false;
    for (const auto& g : got) {
      if (std::abs(g - w) < 1e-8) found = true;
    }
    EXPECT_TRUE(found) << "missing pole " << w.real();
  }
}

TEST(Observer, DeadbeatErrorVanishesInOrderSteps) {
  const auto ph = discretize_interval(servo_plant(), 0.01, 0.01);
  const Matrix c{{1.0, 0.0}};
  const Matrix l = design_deadbeat_observer(ph.ad, c);
  const Matrix acl = ph.ad - l * c;
  // Nilpotency: Acl^l = 0 for deadbeat.
  EXPECT_LT((acl * acl).max_abs(), 1e-8);
}

TEST(Observer, ThrowsForUnobservablePair) {
  // C aligned with an invariant subspace: x2 unobservable from y = x1 when
  // the (1,2) coupling is zero.
  const Matrix ad{{0.5, 0.0}, {0.0, 0.7}};
  const Matrix c{{1.0, 0.0}};
  EXPECT_THROW(
      design_observer(ad, c, {{0.1, 0.0}, {0.2, 0.0}}),
      std::domain_error);
}

TEST(Observer, SwitchedGainsStabilizeErrorMonodromy) {
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.006, 0.006, true},
                                           {0.030, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto ls = design_switched_observer(phases, plant.c, 0.2);
  ASSERT_EQ(ls.size(), phases.size());
  Matrix mono = Matrix::identity(2);
  for (std::size_t j = 0; j < phases.size(); ++j) {
    mono = (phases[j].ad - ls[j] * plant.c) * mono;
  }
  EXPECT_LT(catsched::linalg::spectral_radius(mono), 1.0);
}

/// Design state-feedback gains for the switched servo timing (small PSO
/// budget keeps the test fast; quality does not matter here, stability does).
PhaseGains quick_gains(const ContinuousLTI& plant,
                       const std::vector<Interval>& intervals) {
  catsched::control::DesignSpec spec;
  spec.plant = plant;
  spec.umax = 50.0;
  spec.r = 0.3;
  spec.smax = 0.5;
  catsched::control::DesignOptions opts;
  opts.pso.particles = 24;
  opts.pso.iterations = 40;
  opts.scale_budget_with_dims = false;
  opts.pso_restarts = 1;
  const auto res = catsched::control::design_controller(spec, intervals, opts);
  EXPECT_TRUE(res.feasible);
  return res.gains;
}

TEST(OutputFeedback, TracksReferenceWithBlindObserverStart) {
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.006, 0.006, true},
                                           {0.030, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto gains = quick_gains(plant, intervals);
  const auto ls = design_switched_observer(phases, plant.c, 0.2);
  ASSERT_LT(catsched::control::observer_error_spectral_radius(phases, plant.c,
                                                              ls),
            1.0);

  const Matrix x0 = Matrix::column({0.05, -0.4});  // true state unknown
  const auto sim = simulate_output_feedback(phases, plant.c, gains, ls, x0,
                                            0.0, 0.3, 0.8);
  EXPECT_TRUE(sim.settled);
  // The estimation error must collapse far below its initial value.
  EXPECT_LT(sim.final_est_err, 1e-6 * (1.0 + sim.est_err.front()));
}

TEST(Observer, PerPhaseDeadbeatDoesNotComposeToDeadbeat) {
  // Documented pitfall: each (Ad_j - L_j C) nilpotent does NOT make their
  // product nilpotent. On this timing the per-phase-deadbeat switched
  // observer's error monodromy has spectral radius ~0.85 -- the error decays
  // only ~15% per period instead of vanishing in l steps, so "deadbeat"
  // gains can converge *slower* than modest stable pole radii. This is why
  // design_switched_observer's contract requires a monodromy check.
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.006, 0.006, true},
                                           {0.030, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto ls = design_switched_observer(phases, plant.c, 0.0);
  for (std::size_t j = 0; j < phases.size(); ++j) {
    const Matrix acl = phases[j].ad - ls[j] * plant.c;
    EXPECT_LT((acl * acl).max_abs(), 1e-6);  // per-phase nilpotent
  }
  const double rho =
      catsched::control::observer_error_spectral_radius(phases, plant.c, ls);
  EXPECT_GT(rho, 0.5);  // ... yet the period map is nowhere near deadbeat
  // A modest stable pole radius composes into a *faster* period map here.
  const auto ls_stable = design_switched_observer(phases, plant.c, 0.2);
  EXPECT_LT(catsched::control::observer_error_spectral_radius(phases, plant.c,
                                                              ls_stable),
            rho);
}

TEST(OutputFeedback, SeparationHoldsLoopIsStable) {
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.036, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto gains = quick_gains(plant, intervals);
  const auto ls = design_switched_observer(phases, plant.c, 0.3);
  const double rho =
      output_feedback_spectral_radius(phases, plant.c, gains, ls);
  EXPECT_LT(rho, 1.0);
}

TEST(OutputFeedback, UnstableObserverBreaksTheLoop) {
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false},
                                           {0.036, 0.006, true}};
  const auto phases = discretize_phases(plant, intervals);
  const auto gains = quick_gains(plant, intervals);
  // Deliberately destabilizing observer gain.
  std::vector<Matrix> ls(phases.size(), Matrix{{-40.0}, {-4000.0}});
  const double rho =
      output_feedback_spectral_radius(phases, plant.c, gains, ls);
  EXPECT_GT(rho, 1.0);
}

TEST(OutputFeedback, RejectsMismatchedCounts) {
  const auto plant = servo_plant();
  const std::vector<Interval> intervals = {{0.010, 0.010, false}};
  const auto phases = discretize_phases(plant, intervals);
  PhaseGains gains;
  gains.k = {Matrix{{0.0, 0.0}}};
  gains.f = {0.0};
  const std::vector<Matrix> ls;  // empty
  EXPECT_THROW(simulate_output_feedback(phases, plant.c, gains, ls,
                                        Matrix::column({0.0, 0.0}), 0.0, 1.0,
                                        1.0),
               std::invalid_argument);
}

}  // namespace
