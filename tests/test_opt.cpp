// Unit tests for the optimizer substrate: PSO, pattern search, the hybrid
// discrete search (paper Sec. IV) and exhaustive enumeration.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/discrete_search.hpp"
#include "opt/pattern_search.hpp"
#include "opt/pso.hpp"

using namespace catsched::opt;

namespace {

double sphere(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += (v - 1.5) * (v - 1.5);
  return s;
}

double rosenbrock(const std::vector<double>& x) {
  double s = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    s += 100.0 * std::pow(x[i + 1] - x[i] * x[i], 2) + std::pow(1 - x[i], 2);
  }
  return s;
}

}  // namespace

// ------------------------------------------------------------------- PSO

TEST(Pso, SolvesSphere) {
  PsoOptions opts;
  opts.particles = 30;
  opts.iterations = 120;
  opts.seed = 42;
  const auto res = pso_minimize(sphere, {-5, -5, -5}, {5, 5, 5}, opts);
  EXPECT_LT(res.cost, 1e-4);
  for (double v : res.x) EXPECT_NEAR(v, 1.5, 0.05);
  EXPECT_GT(res.evaluations, 0);
}

TEST(Pso, DeterministicForFixedSeed) {
  PsoOptions opts;
  opts.particles = 20;
  opts.iterations = 30;
  opts.seed = 9;
  const auto a = pso_minimize(rosenbrock, {-2, -2}, {2, 2}, opts);
  const auto b = pso_minimize(rosenbrock, {-2, -2}, {2, 2}, opts);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.x, b.x);
  opts.seed = 10;
  const auto c = pso_minimize(rosenbrock, {-2, -2}, {2, 2}, opts);
  // Different seed almost surely explores differently.
  EXPECT_NE(a.x, c.x);
}

TEST(Pso, SeedsRespectedAndClamped) {
  PsoOptions opts;
  opts.particles = 5;
  opts.iterations = 0;  // only the initial evaluation
  opts.seed = 1;
  // One seed exactly at the optimum: with zero iterations the best must be
  // that seed.
  const auto res =
      pso_minimize(sphere, {-5, -5}, {5, 5}, opts, {{1.5, 1.5}, {9.0, 0.0}});
  EXPECT_LT(res.cost, 1e-20);
  EXPECT_THROW(
      pso_minimize(sphere, {-5, -5}, {5, 5}, opts, {{1.0}}),  // wrong dim
      std::invalid_argument);
}

TEST(Pso, RejectsBadBounds) {
  EXPECT_THROW(pso_minimize(sphere, {}, {}, PsoOptions{}),
               std::invalid_argument);
  EXPECT_THROW(pso_minimize(sphere, {1.0}, {-1.0}, PsoOptions{}),
               std::invalid_argument);
}

// --------------------------------------------------------- pattern search

TEST(PatternSearch, PolishesToLocalMinimum) {
  const auto res = pattern_search(sphere, {0.0, 0.0});
  EXPECT_LT(res.cost, 1e-6);
  EXPECT_NEAR(res.x[0], 1.5, 1e-3);
}

TEST(PatternSearch, DeterministicAndBounded) {
  PatternSearchOptions opts;
  opts.max_evaluations = 100;
  const auto a = pattern_search(rosenbrock, {-1.0, 1.0}, opts);
  const auto b = pattern_search(rosenbrock, {-1.0, 1.0}, opts);
  EXPECT_EQ(a.x, b.x);
  EXPECT_LE(a.evaluations, 100);
  EXPECT_THROW(pattern_search(sphere, {}), std::invalid_argument);
}

// ----------------------------------------------------------- EvalCache

TEST(EvalCache, CountsUniqueEvaluations) {
  int calls = 0;
  EvalCache cache([&calls](const std::vector<int>& p) {
    ++calls;
    return EvalOutcome{static_cast<double>(p[0]), true};
  });
  cache.evaluate({1});
  cache.evaluate({1});
  cache.evaluate({2});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.unique_evaluations(), 2);
}

// --------------------------------------------------------- hybrid search

namespace {

/// Quadratic bowl over integers with optimum at (3, 2, 3); feasible region
/// m_i in [1, 6] componentwise (monotone / downward closed).
EvalOutcome bowl(const std::vector<int>& m) {
  double v = 1.0;
  const int target[3] = {3, 2, 3};
  for (std::size_t i = 0; i < m.size(); ++i) {
    v -= 0.05 * (m[i] - target[i]) * (m[i] - target[i]);
  }
  return EvalOutcome{v, true};
}

bool cheap_box(const std::vector<int>& m) {
  int sum = 0;
  for (int v : m) sum += v;
  return sum <= 14;  // downward-closed
}

}  // namespace

TEST(HybridSearch, ClimbsToOptimumFromBothPaperStarts) {
  HybridOptions opts;
  opts.max_value = 8;
  for (const std::vector<int>& start : {std::vector<int>{4, 2, 2}, {1, 2, 1}}) {
    EvalCache cache(bowl);
    const auto res = hybrid_search(cache, cheap_box, start, opts);
    EXPECT_TRUE(res.found_feasible);
    EXPECT_EQ(res.best, (std::vector<int>{3, 2, 3})) << "start " << start[0];
    EXPECT_GT(res.evaluations, 0);
  }
}

TEST(HybridSearch, MemoSharedAcrossStarts) {
  const auto ms = hybrid_search_multistart(bowl, cheap_box,
                                           {{4, 2, 2}, {1, 2, 1}}, {});
  EXPECT_TRUE(ms.combined.found_feasible);
  EXPECT_EQ(ms.combined.best, (std::vector<int>{3, 2, 3}));
  // Shared memo: total unique evaluations < sum of independent runs.
  int sum_runs = 0;
  for (const auto& r : ms.runs) sum_runs += r.evaluations;
  EXPECT_EQ(ms.unique_evaluations, sum_runs);
  EXPECT_LT(ms.unique_evaluations, 2 * 30);
}

TEST(HybridSearch, ToleranceEscapesLocalOptimum) {
  // 1-D landscape with a dip: f(1)=0.5, f(2)=0.49, f(3)=0.8. Plain greedy
  // from 1 stays; tolerance 0.02 crosses the dip.
  auto f = [](const std::vector<int>& m) {
    const double vals[] = {0.0, 0.5, 0.49, 0.8, 0.1};
    return EvalOutcome{vals[std::min(m[0], 4)], true};
  };
  auto cheap = [](const std::vector<int>& m) { return m[0] <= 4; };
  HybridOptions greedy;
  greedy.tolerance = 0.0;
  greedy.max_value = 4;
  EvalCache c1(f);
  const auto r1 = hybrid_search(c1, cheap, {1}, greedy);
  // Greedy sees f(2) < f(1) beyond tolerance: cannot move; but it still
  // *evaluated* the neighbors, so best-seen may include them. The path
  // must not have left the start.
  EXPECT_EQ(r1.path.size(), 1u);

  HybridOptions tol;
  tol.tolerance = 0.02;
  tol.max_value = 4;
  EvalCache c2(f);
  const auto r2 = hybrid_search(c2, cheap, {1}, tol);
  EXPECT_EQ(r2.best, (std::vector<int>{3}));
  EXPECT_GE(r2.path.size(), 3u);
}

TEST(HybridSearch, SkipsControlInfeasibleMoves) {
  // The point (2) is control-infeasible; search from (1) must still reach
  // (3) only if tolerance lets it... with (2) infeasible it cannot pass.
  auto f = [](const std::vector<int>& m) {
    const double vals[] = {0.0, 0.5, 0.9, 0.8};
    return EvalOutcome{vals[std::min(m[0], 3)], m[0] != 2};
  };
  auto cheap = [](const std::vector<int>& m) { return m[0] <= 3; };
  HybridOptions opts;
  opts.max_value = 3;
  EvalCache cache(f);
  const auto res = hybrid_search(cache, cheap, {1}, opts);
  // best-seen tracks only feasible points.
  EXPECT_EQ(res.best, (std::vector<int>{1}));
  for (const auto& p : res.path) EXPECT_NE(p[0], 2);
}

TEST(HybridSearch, RejectsInfeasibleStart) {
  EvalCache cache(bowl);
  EXPECT_THROW(hybrid_search(cache, cheap_box, {9, 9, 9}, {}),
               std::invalid_argument);
  EXPECT_THROW(hybrid_search(cache, cheap_box, {}, {}),
               std::invalid_argument);
}

// ------------------------------------------------------------ exhaustive

TEST(Exhaustive, EnumeratesDownwardClosedRegion) {
  auto cheap = [](const std::vector<int>& m) { return m[0] + m[1] <= 4; };
  HybridOptions opts;
  opts.max_value = 10;
  const auto pts = enumerate_feasible(cheap, 2, opts);
  // {1,1},{1,2},{1,3},{2,1},{2,2},{3,1}
  EXPECT_EQ(pts.size(), 6u);
  EXPECT_THROW(enumerate_feasible(cheap, 0, opts), std::invalid_argument);
}

TEST(Exhaustive, FindsGlobalOptimumAndCounts) {
  const auto res = exhaustive_search(bowl, cheap_box, 3, HybridOptions{});
  EXPECT_TRUE(res.found_feasible);
  EXPECT_EQ(res.best, (std::vector<int>{3, 2, 3}));
  EXPECT_NEAR(res.best_value, 1.0, 1e-12);
  EXPECT_EQ(res.enumerated, static_cast<int>(res.all.size()));
  EXPECT_EQ(res.control_feasible, res.enumerated);  // all feasible here
}

TEST(Exhaustive, HybridNeedsFewerEvaluationsThanExhaustive) {
  // The paper's headline efficiency claim on a synthetic landscape.
  const auto ex = exhaustive_search(bowl, cheap_box, 3, HybridOptions{});
  const auto ms = hybrid_search_multistart(bowl, cheap_box, {{4, 2, 2}}, {});
  EXPECT_LT(ms.unique_evaluations, ex.enumerated / 2);
  EXPECT_EQ(ms.combined.best, ex.best);
}
