/// \file test_parallel.cpp
/// \brief Tests for the parallel design-space exploration engine: thread
///        pool semantics (coverage, chunked scheduling under high cost
///        variance, nesting, exceptions), the vector hash,
///        the compute-once concurrent memo map, the thread-safe EvalCache,
///        and — the contract everything above exists for — bit-identical
///        serial-vs-parallel co-design results on a reduced DATE'18-style
///        system.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/case_study.hpp"
#include "core/codesign.hpp"
#include "core/parallel.hpp"

using namespace catsched;
using namespace catsched::core;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  int zero_calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  pool.parallel_for(1, [&](std::size_t) { ++one_calls; });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1000;
  // Chunk 1 (fully dynamic), an odd size that does not divide n, the
  // low-variance default (0), exactly n, and past n (degenerates to one
  // chunk drained by the caller).
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{0}, n, n + 17}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, chunk, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "chunk " << chunk << " index " << i;
    }
  }
}

TEST(ThreadPool, ChunkedParallelForHandlesHighVarianceLoad) {
  // Heavy-tailed per-item cost (deterministic via mix64: 1 in 8 items is
  // ~100x the rest) — the starvation shape chunking exists for. Results
  // written to per-index slots must match the serial run exactly.
  constexpr std::size_t n = 512;
  auto work = [](std::size_t i) {
    const std::uint64_t r = mix64(static_cast<std::uint64_t>(i));
    std::uint64_t iters = 20 + (r % 8 == 0 ? 2000 : 0);
    double x = 1.0;
    for (std::uint64_t k = 0; k < iters; ++k) x = x * 1.0001 + 1e-7;
    return x;
  };
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) serial[i] = work(i);

  ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{0},
                                  std::size_t{64}}) {
    std::vector<double> out(n, 0.0);
    pool.parallel_for(n, chunk, [&](std::size_t i) { out[i] = work(i); });
    EXPECT_EQ(out, serial) << "chunk " << chunk;
  }
}

TEST(ThreadPool, ChunkedParallelForNests) {
  // Chunked outer loop whose body runs a chunked inner loop on the same
  // pool: the caller-participates rule must keep this deadlock-free for
  // every chunk-size combination.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, 3, [&](std::size_t) {
    pool.parallel_for(8, 2, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, DefaultChunkIsLowVarianceAndBounded) {
  // Tiny loops: one item per claim (best balance under cost variance).
  EXPECT_EQ(ThreadPool::default_chunk(0, 4), 1u);
  EXPECT_EQ(ThreadPool::default_chunk(1, 4), 1u);
  EXPECT_EQ(ThreadPool::default_chunk(30, 4), 1u);
  // ~8 chunks per participant once the loop is big enough.
  EXPECT_EQ(ThreadPool::default_chunk(320, 4), 10u);
  // Capped so a huge loop's straggler chunk stays bounded.
  EXPECT_EQ(ThreadPool::default_chunk(1u << 20, 2), 64u);
  // Degenerate participant count never divides by zero.
  EXPECT_GE(ThreadPool::default_chunk(100, 0), 1u);
}

TEST(ThreadPool, ChunkedSerialFallbackHelperRunsInline) {
  std::vector<int> order;
  parallel_for(nullptr, 5, 2, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A pool task that itself runs a parallel_for on the same pool must make
  // progress even when every worker is busy (the caller participates).
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 17) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Fail-fast stops further chunk claims after the throw; how many bodies
  // ran before it depends on scheduling, so only the propagation is pinned
  // here — the short-circuit bound is pinned deterministically below.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 100);
}

TEST(ThreadPool, ParallelForFailFastShortCircuitsRemainingChunks) {
  // An immediate throw from the very first iteration must leave almost the
  // whole index space unexecuted: workers observing the failure count
  // their claimed chunks done without running the bodies. With chunk = 1
  // the in-flight exposure is at most one iteration per participant.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(10000, 1,
                                 [&](std::size_t) {
                                   ran.fetch_add(1);
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  // Every participant (4 workers + caller) can have claimed at most one
  // chunk before observing the failure flag.
  EXPECT_LE(ran.load(), 5);
}

TEST(ThreadPool, SerialFallbackHelperRunsInline) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // single-threaded: stays ordered
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForBudgetShortCircuitsRemainingChunks) {
  // A budget that fires mid-loop stops further chunk claims without
  // throwing: the loop returns normally with partial execution. Same
  // one-in-flight-iteration bound as fail-fast.
  ThreadPool pool(4);
  RunBudget budget;
  std::atomic<int> ran{0};
  pool.parallel_for(
      10000, 1,
      [&](std::size_t) {
        ran.fetch_add(1);
        budget.request_stop();
      },
      &budget);
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 5);  // 4 workers + caller, <= 1 body each
  EXPECT_EQ(budget.reason(), core::StopReason::stop_requested);
}

TEST(ThreadPool, SerialParallelForChecksBudgetPerIteration) {
  // The serial fallback checks the budget before every iteration, so an
  // external stop cuts it off at the very next index.
  RunBudget budget;
  std::vector<int> order;
  parallel_for(nullptr, 100, 4, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
    if (i == 2) budget.request_stop();
  }, &budget);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPool, PreFiredBudgetRunsNothing) {
  ThreadPool pool(2);
  RunBudget budget;
  budget.request_stop();
  std::atomic<int> ran{0};
  pool.parallel_for(64, 1, [&](std::size_t) { ran.fetch_add(1); }, &budget);
  parallel_for(nullptr, 64, 8, [&](std::size_t) { ran.fetch_add(1); }, &budget);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  // An exception thrown inside a nested parallel_for must propagate out of
  // the inner loop into the outer body, fail-fast the outer loop, and
  // surface to the caller — with every worker released (no deadlock).
  ThreadPool pool(2);
  std::atomic<int> outer_ran{0};
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](std::size_t) {
                                   outer_ran.fetch_add(1);
                                   pool.parallel_for(8, [&](std::size_t j) {
                                     if (j == 3) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
  EXPECT_GE(outer_ran.load(), 1);
  // The pool must still be fully serviceable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(16, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, SharedPoolExists) {
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

// ------------------------------------------------------------- VectorHash

TEST(VectorHash, DistinguishesNearbySchedules) {
  VectorHash h;
  std::set<std::size_t> hashes;
  for (int a = 1; a <= 8; ++a) {
    for (int b = 1; b <= 8; ++b) {
      for (int c = 1; c <= 8; ++c) {
        hashes.insert(h(std::vector<int>{a, b, c}));
      }
    }
  }
  // A strong hash over 512 tiny schedules should not collide at all.
  EXPECT_EQ(hashes.size(), 512u);
  EXPECT_EQ(h(std::vector<int>{1, 2}), h(std::vector<int>{1, 2}));
  EXPECT_NE(h(std::vector<int>{1, 2}), h(std::vector<int>{2, 1}));
}

// ------------------------------------------------------ ConcurrentMemoMap

TEST(ConcurrentMemoMap, ComputesEachKeyExactlyOnceUnderContention) {
  ConcurrentMemoMap<std::vector<int>, int, VectorHash> memo;
  std::atomic<int> computes{0};
  ThreadPool pool(8);
  constexpr int kKeys = 20;
  pool.parallel_for(800, [&](std::size_t i) {
    const std::vector<int> key{static_cast<int>(i) % kKeys};
    const int v = memo.get_or_compute(key, [&] {
      computes.fetch_add(1);
      return key[0] * 10;
    });
    ASSERT_EQ(v, (static_cast<int>(i) % kKeys) * 10);
  });
  EXPECT_EQ(computes.load(), kKeys);
  EXPECT_EQ(memo.size(), static_cast<std::size_t>(kKeys));
}

// -------------------------------------------------- EvalCache (thread-safe)

TEST(EvalCache, ConcurrentEvaluationsDeduplicate) {
  std::atomic<int> objective_calls{0};
  opt::EvalCache cache([&](const std::vector<int>& p) {
    objective_calls.fetch_add(1);
    return opt::EvalOutcome{static_cast<double>(p[0] + p[1]), true};
  });
  ThreadPool pool(8);
  pool.parallel_for(400, [&](std::size_t i) {
    const std::vector<int> p{static_cast<int>(i % 10), static_cast<int>(i % 7)};
    const opt::EvalOutcome& out = cache.evaluate(p);
    ASSERT_EQ(out.value, static_cast<double>(p[0] + p[1]));
  });
  // 10 x 7 distinct points; every extra call was a memo hit.
  EXPECT_EQ(objective_calls.load(), 70);
  EXPECT_EQ(cache.unique_evaluations(), 70);
}

TEST(EvalCache, BatchKeepsInputOrderAndDeduplicates) {
  std::atomic<int> objective_calls{0};
  opt::EvalCache cache([&](const std::vector<int>& p) {
    objective_calls.fetch_add(1);
    return opt::EvalOutcome{static_cast<double>(p[0]), p[0] % 2 == 0};
  });
  ThreadPool pool(4);
  std::vector<std::vector<int>> points;
  for (int k = 0; k < 50; ++k) points.push_back({k % 5});
  std::vector<const std::vector<int>*> batch;
  for (const auto& p : points) batch.push_back(&p);
  std::atomic<int> misses{0};
  const auto outs = cache.evaluate_batch(batch, &pool, &misses);
  ASSERT_EQ(outs.size(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    ASSERT_EQ(outs[k]->value, static_cast<double>(points[k][0]));
  }
  EXPECT_EQ(objective_calls.load(), 5);
  // Per-caller miss accounting matches the objective-call count.
  EXPECT_EQ(misses.load(), 5);
}

// ------------------------------------- serial vs parallel co-design results

namespace {

/// Reduced two-app system in the spirit of the DATE'18 case study (same
/// cache, smaller programs, cheap deterministic design budget) so the
/// equivalence check runs a full exhaustive + multi-start search quickly.
SystemModel reduced_system() {
  SystemModel sys;
  sys.cache_config = date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();

  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    a.y0 = 0.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

control::DesignOptions fast_options() {
  control::DesignOptions o = date18_design_options();
  o.pso.particles = 10;
  o.pso.iterations = 12;
  o.pso.stall_iterations = 6;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

}  // namespace

TEST(SerialParallelEquivalence, ExhaustiveCodesignIsBitIdentical) {
  opt::HybridOptions hopts;
  hopts.max_value = 8;

  Evaluator serial_ev(reduced_system(), fast_options());
  const auto serial = exhaustive_codesign(serial_ev, hopts, nullptr);

  ThreadPool pool(4);
  Evaluator parallel_ev(reduced_system(), fast_options());
  const auto parallel = exhaustive_codesign(parallel_ev, hopts, &pool);

  ASSERT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.best_schedule.bursts(), parallel.best_schedule.bursts());
  EXPECT_EQ(serial.best_evaluation.pall, parallel.best_evaluation.pall);
  EXPECT_EQ(serial.details.enumerated, parallel.details.enumerated);
  EXPECT_EQ(serial.details.control_feasible, parallel.details.control_feasible);
  ASSERT_EQ(serial.details.all.size(), parallel.details.all.size());
  for (std::size_t i = 0; i < serial.details.all.size(); ++i) {
    ASSERT_EQ(serial.details.all[i].first, parallel.details.all[i].first);
    ASSERT_EQ(serial.details.all[i].second.value,
              parallel.details.all[i].second.value);
    ASSERT_EQ(serial.details.all[i].second.feasible,
              parallel.details.all[i].second.feasible);
  }
  // Same design work done (each timing pattern designed exactly once).
  EXPECT_EQ(serial_ev.designs_run(), parallel_ev.designs_run());
}

TEST(SerialParallelEquivalence, MultiStartHybridMatchesSerial) {
  opt::HybridOptions hopts;
  hopts.max_value = 8;
  hopts.tolerance = 0.005;
  const std::vector<std::vector<int>> starts{{1, 1}, {2, 2}, {4, 2}, {1, 3}};

  Evaluator serial_ev(reduced_system(), fast_options());
  const auto serial =
      find_optimal_schedule(serial_ev, starts, hopts, nullptr);

  ThreadPool pool(4);
  Evaluator parallel_ev(reduced_system(), fast_options());
  const auto parallel =
      find_optimal_schedule(parallel_ev, starts, hopts, &pool);

  ASSERT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.best_schedule.bursts(), parallel.best_schedule.bursts());
  EXPECT_EQ(serial.best_evaluation.pall, parallel.best_evaluation.pall);
  // The paper's "evaluated schedules" accounting must agree exactly.
  EXPECT_EQ(serial.schedules_evaluated, parallel.schedules_evaluated);
  ASSERT_EQ(serial.search.runs.size(), parallel.search.runs.size());
  int serial_sum = 0;
  int parallel_sum = 0;
  for (std::size_t i = 0; i < serial.search.runs.size(); ++i) {
    EXPECT_EQ(serial.search.runs[i].path, parallel.search.runs[i].path)
        << "run " << i;
    EXPECT_EQ(serial.search.runs[i].best_value,
              parallel.search.runs[i].best_value)
        << "run " << i;
    serial_sum += serial.search.runs[i].evaluations;
    parallel_sum += parallel.search.runs[i].evaluations;
  }
  // Each unique point is charged to exactly one run in both modes (the
  // per-run split may differ under races, the sum never does).
  EXPECT_EQ(serial_sum, serial.search.unique_evaluations);
  EXPECT_EQ(parallel_sum, parallel.search.unique_evaluations);
}

// --------------------------------------------------- evaluator fault path

TEST(EvaluatorFaults, InjectedDesignFaultPropagatesAndMemoStaysRetryable) {
  // A fault thrown inside a pooled controller design must surface as
  // FaultInjected through the worker threads without deadlocking, and the
  // design memo's once-flag must not latch on the exceptional compute —
  // the retried evaluation recomputes the entry and succeeds bit-identical
  // to an undisturbed evaluator.
  ThreadPool pool(4);
  FaultPlan fault;
  fault.fail_evaluation_at = 1;
  EvaluatorOptions eopts;
  eopts.fault = &fault;
  Evaluator faulty(reduced_system(), fast_options(), &pool, eopts);
  const sched::PeriodicSchedule rr({1, 1});
  ASSERT_TRUE(faulty.idle_feasible(rr));
  EXPECT_THROW(faulty.evaluate(rr), FaultInjected);

  const auto retried = faulty.evaluate(rr);  // fault is one-shot

  Evaluator clean(reduced_system(), fast_options(), &pool);
  const auto reference = clean.evaluate(rr);
  EXPECT_EQ(retried.pall, reference.pall);
  EXPECT_EQ(retried.idle_feasible, reference.idle_feasible);
  EXPECT_EQ(retried.control_feasible, reference.control_feasible);

  // The pool survived the exceptional batch and still services work.
  std::atomic<int> after{0};
  pool.parallel_for(32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}
