// Tests for the racing metaheuristic portfolio (opt/portfolio.hpp) and the
// SearchDriver proposal-batch interface beneath it: serial-vs-parallel
// bit-identity at several thread counts, kill-and-resume through the shared
// EvalCache journal, deterministic strategy elimination, and the contract
// that the portfolio's hybrid lane matches the standalone hybrid search.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "core/parallel.hpp"
#include "core/run_budget.hpp"
#include "opt/portfolio.hpp"

using namespace catsched;
using namespace catsched::opt;

namespace {

/// Quadratic bowl over integers, optimum at (3, 2, 3) — the same synthetic
/// landscape the hybrid-search tests climb (tests/test_opt.cpp).
EvalOutcome bowl(const std::vector<int>& m) {
  double v = 1.0;
  const int target[3] = {3, 2, 3};
  for (std::size_t i = 0; i < m.size(); ++i) {
    v -= 0.05 * (m[i] - target[i]) * (m[i] - target[i]);
  }
  return EvalOutcome{v, true};
}

bool cheap_box(const std::vector<int>& m) {
  int sum = 0;
  for (int v : m) sum += v;
  return sum <= 14;  // downward-closed
}

/// A rougher multi-modal landscape: two basins, the better one away from
/// the low corner, infeasible ridge between them — exercises strategies
/// disagreeing long enough for elimination to fire.
EvalOutcome two_basins(const std::vector<int>& m) {
  const auto bump = [&](int a, int b, double h, double w) {
    double v = h;
    v -= w * (m[0] - a) * (m[0] - a);
    v -= w * (m[1] - b) * (m[1] - b);
    return v;
  };
  const double v = std::max(bump(2, 2, 0.6, 0.05), bump(6, 5, 0.9, 0.04));
  const bool feasible = !(m[0] == 4 && m[1] == 4);
  return EvalOutcome{v, feasible};
}

bool cheap_wide(const std::vector<int>& m) {
  int sum = 0;
  for (int v : m) sum += v;
  return sum <= 16;
}

PortfolioOptions small_opts() {
  PortfolioOptions o;
  o.max_value = 8;
  o.max_rounds = 40;
  o.anneal.iterations = 48;
  o.anneal.batch = 6;
  o.genetic.population = 8;
  o.genetic.generations = 6;
  return o;
}

const std::vector<std::vector<int>> kStarts{{1, 1, 1}, {4, 2, 2}};

struct Fingerprint {
  std::vector<int> best;
  double best_value;
  std::string winner;
  int rounds;
  int unique_evaluations;
  std::vector<std::string> eliminated;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const PortfolioResult& r) {
  Fingerprint f{r.best, r.best_value, r.winner, r.rounds,
                r.unique_evaluations, {}};
  for (const StrategyReport& s : r.strategies) {
    if (s.eliminated) f.eliminated.push_back(s.name);
  }
  return f;
}

class TempCheckpoint {
 public:
  explicit TempCheckpoint(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("catsched_portfolio_" + tag + ".snap"))
                  .string()) {
    cleanup();
  }
  ~TempCheckpoint() { cleanup(); }
  const std::string& str() const { return path_; }

 private:
  void cleanup() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
    std::filesystem::remove(path_ + ".prev", ec);
  }
  std::string path_;
};

}  // namespace

TEST(Portfolio, FindsTheOptimumOnTheBowl) {
  const auto res = portfolio_search(bowl, cheap_box, kStarts, small_opts());
  EXPECT_TRUE(res.found_feasible);
  EXPECT_EQ(res.best, (std::vector<int>{3, 2, 3}));
  EXPECT_FALSE(res.winner.empty());
  EXPECT_GT(res.rounds, 0);
  EXPECT_GT(res.new_evaluations, 0);
  EXPECT_EQ(res.new_evaluations, res.unique_evaluations);
  EXPECT_EQ(res.strategies.size(), kStarts.size() + 4);  // + beam/pat/sa/ga
  EXPECT_EQ(res.history.size(), static_cast<std::size_t>(res.rounds));
  // The history's unique-evaluation column is the cache size after each
  // round: non-decreasing, ending at the final total.
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i].unique_evaluations,
              res.history[i - 1].unique_evaluations);
  }
  EXPECT_EQ(res.history.back().unique_evaluations, res.unique_evaluations);
}

TEST(Portfolio, BitIdenticalAcrossThreadCounts) {
  const auto serial =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, small_opts());
  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::ThreadPool pool(threads);
    const auto parallel = portfolio_search(two_basins, cheap_wide,
                                           {{1, 1}, {5, 4}}, small_opts(),
                                           &pool);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel))
        << "threads = " << threads;
    ASSERT_EQ(serial.history.size(), parallel.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      EXPECT_EQ(serial.history[i].incumbent_value,
                parallel.history[i].incumbent_value);
      EXPECT_EQ(serial.history[i].unique_evaluations,
                parallel.history[i].unique_evaluations);
    }
  }
}

TEST(Portfolio, HybridLaneMatchesStandaloneHybridSearch) {
  // With elimination off the hybrid lane runs to self-convergence; its
  // walk replicates hybrid_search decision-for-decision, so its lane best
  // equals the standalone result and the portfolio can only add to it.
  PortfolioOptions opts = small_opts();
  opts.elimination_rounds = 0;
  const auto res = portfolio_search(bowl, cheap_box, kStarts, opts);

  HybridOptions hopts;
  hopts.max_value = opts.max_value;
  hopts.max_steps = opts.hybrid_max_steps;
  for (std::size_t i = 0; i < kStarts.size(); ++i) {
    EvalCache cache(bowl);
    const auto solo = hybrid_search(cache, cheap_box, kStarts[i], hopts);
    const StrategyReport& lane = res.strategies[i];
    EXPECT_EQ(lane.name, "hybrid:" + std::to_string(i));
    EXPECT_EQ(lane.found_feasible, solo.found_feasible);
    EXPECT_EQ(lane.best, solo.best);
    EXPECT_EQ(lane.best_value, solo.best_value);
    EXPECT_GE(res.best_value, solo.best_value);
  }
}

TEST(Portfolio, EliminationIsDeterministicAndSparesTheIncumbent) {
  PortfolioOptions opts = small_opts();
  opts.elimination_rounds = 2;  // aggressive: force retirements
  const auto a =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {6, 5}}, opts);
  const auto b =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {6, 5}}, opts);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  // The winner (incumbent holder) can never be retired by the race.
  for (const StrategyReport& s : a.strategies) {
    if (s.name == a.winner) {
      EXPECT_FALSE(s.eliminated);
    }
  }
  // With a start pinned on the better basin's peak the race has a clear
  // incumbent; something must trail it for 2 consecutive rounds.
  bool any_eliminated = false;
  for (const StrategyReport& s : a.strategies) {
    any_eliminated = any_eliminated || s.eliminated;
  }
  EXPECT_TRUE(any_eliminated);
}

TEST(Portfolio, EvaluationCapStopsWithReason) {
  core::RunBudget budget;
  budget.set_max_evaluations(10);
  PortfolioOptions opts = small_opts();
  opts.anytime.budget = &budget;
  const auto res = portfolio_search(bowl, cheap_box, kStarts, opts);
  EXPECT_EQ(res.telemetry.stop, core::StopReason::evaluation_limit);
  const auto full = portfolio_search(bowl, cheap_box, kStarts, small_opts());
  EXPECT_LT(res.rounds, full.rounds);

  core::RunBudget dead;
  dead.request_stop();
  PortfolioOptions stopped = small_opts();
  stopped.anytime.budget = &dead;
  const auto none = portfolio_search(bowl, cheap_box, kStarts, stopped);
  EXPECT_EQ(none.telemetry.stop, core::StopReason::stop_requested);
  EXPECT_EQ(none.rounds, 0);
}

TEST(Portfolio, KillAndResumeConvergesToTheUninterruptedResult) {
  TempCheckpoint ck("resume");
  // Reference: uninterrupted, no checkpointing.
  const auto ref =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, small_opts());

  // Run 1: killed by an evaluation cap mid-race, journal on disk.
  {
    core::RunBudget budget;
    budget.set_max_evaluations(12);
    PortfolioOptions opts = small_opts();
    opts.anytime.budget = &budget;
    opts.anytime.checkpoint_path = ck.str();
    opts.anytime.checkpoint_every = 4;
    const auto cut =
        portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, opts);
    EXPECT_EQ(cut.telemetry.stop, core::StopReason::evaluation_limit);
    EXPECT_GT(cut.telemetry.checkpoints_written, 0);
  }

  // Run 2: fresh process image, same inputs, resumes from the journal and
  // replays to the bit-identical uninterrupted result. Replayed points are
  // memo hits — they are not new evaluations, so even a small budget does
  // not re-fire on old ground.
  core::RunBudget budget;
  budget.set_max_evaluations(1000);
  PortfolioOptions opts = small_opts();
  opts.anytime.budget = &budget;
  opts.anytime.checkpoint_path = ck.str();
  opts.anytime.checkpoint_every = 4;
  const auto resumed =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, opts);
  EXPECT_TRUE(resumed.telemetry.resumed);
  EXPECT_EQ(resumed.telemetry.stop, core::StopReason::completed);
  EXPECT_EQ(resumed.best, ref.best);
  EXPECT_EQ(resumed.best_value, ref.best_value);
  EXPECT_EQ(resumed.winner, ref.winner);
  EXPECT_EQ(resumed.rounds, ref.rounds);
  EXPECT_EQ(resumed.unique_evaluations, ref.unique_evaluations);
  // The resumed run only pays for points past the kill: strictly fewer
  // new evaluations than the uninterrupted run's total.
  EXPECT_LT(resumed.new_evaluations, ref.new_evaluations);
  EXPECT_GT(resumed.new_evaluations, 0);
}

TEST(Portfolio, ResumeIsThreadCountInvariantToo) {
  TempCheckpoint ck("resume_mt");
  {
    core::RunBudget budget;
    budget.set_max_evaluations(12);
    PortfolioOptions opts = small_opts();
    opts.anytime.budget = &budget;
    opts.anytime.checkpoint_path = ck.str();
    opts.anytime.checkpoint_every = 4;
    portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, opts);
  }
  PortfolioOptions opts = small_opts();
  opts.anytime.checkpoint_path = ck.str();
  core::ThreadPool pool(4);
  const auto parallel = portfolio_search(two_basins, cheap_wide,
                                         {{1, 1}, {5, 4}}, opts, &pool);
  const auto ref =
      portfolio_search(two_basins, cheap_wide, {{1, 1}, {5, 4}}, small_opts());
  EXPECT_TRUE(parallel.telemetry.resumed);
  EXPECT_EQ(parallel.best, ref.best);
  EXPECT_EQ(parallel.best_value, ref.best_value);
  EXPECT_EQ(parallel.rounds, ref.rounds);
  EXPECT_EQ(parallel.unique_evaluations, ref.unique_evaluations);
}

TEST(Portfolio, RejectsBadStarts) {
  EXPECT_THROW(portfolio_search(bowl, cheap_box, {}, small_opts()),
               std::invalid_argument);
  EXPECT_THROW(portfolio_search(bowl, cheap_box, {{9, 9, 9}}, small_opts()),
               std::invalid_argument);
}

// ------------------------------------------------- individual drivers

TEST(SearchDriver, PatternDriverContractsToTheOptimum) {
  auto drv = make_pattern_driver("pattern", cheap_box, {1, 1, 1},
                                 PatternDriverOptions{4, 1, 8, 100});
  EvalCache cache(bowl);
  while (!drv->finished()) {
    const auto batch = drv->propose_batch();
    if (batch.empty()) break;
    std::vector<const EvalOutcome*> outs;
    outs.reserve(batch.size());
    for (const auto& p : batch) outs.push_back(&cache.evaluate(p));
    drv->observe_batch(batch, outs);
  }
  EXPECT_TRUE(drv->found_feasible());
  EXPECT_EQ(drv->best(), (std::vector<int>{3, 2, 3}));
}

TEST(SearchDriver, BeamWiderThanOneDominatesNarrowBeamOnTheRoughLandscape) {
  const auto run_beam = [&](int width) {
    BeamDriverOptions o;
    o.width = width;
    o.max_value = 8;
    auto drv = make_beam_driver("beam", cheap_wide, {1, 1}, o);
    EvalCache cache(two_basins);
    while (!drv->finished()) {
      const auto batch = drv->propose_batch();
      if (batch.empty()) break;
      std::vector<const EvalOutcome*> outs;
      outs.reserve(batch.size());
      for (const auto& p : batch) outs.push_back(&cache.evaluate(p));
      drv->observe_batch(batch, outs);
    }
    return drv->best_value();
  };
  // A wider frontier can only see more of the move graph per round.
  EXPECT_GE(run_beam(3), run_beam(1));
}

TEST(SearchDriver, StochasticDriversAreSeedDeterministic) {
  const auto run = [&](auto&& make) {
    auto drv = make();
    EvalCache cache(two_basins);
    std::vector<std::vector<std::vector<int>>> proposals;
    while (!drv->finished()) {
      const auto batch = drv->propose_batch();
      if (batch.empty()) break;
      proposals.push_back(batch);
      std::vector<const EvalOutcome*> outs;
      outs.reserve(batch.size());
      for (const auto& p : batch) outs.push_back(&cache.evaluate(p));
      drv->observe_batch(batch, outs);
    }
    return proposals;
  };
  AnnealDriverOptions sa;
  sa.iterations = 24;
  sa.max_value = 8;
  sa.seed = 7;
  const auto a = run([&] {
    return make_anneal_driver("sa", cheap_wide, {2, 2}, sa);
  });
  const auto b = run([&] {
    return make_anneal_driver("sa", cheap_wide, {2, 2}, sa);
  });
  EXPECT_EQ(a, b);

  GeneticDriverOptions ga;
  ga.population = 6;
  ga.generations = 4;
  ga.max_value = 8;
  ga.seed = 7;
  const auto c = run([&] {
    return make_genetic_driver("ga", cheap_wide, 2, ga);
  });
  const auto d = run([&] {
    return make_genetic_driver("ga", cheap_wide, 2, ga);
  });
  EXPECT_EQ(c, d);
}
