/// \file test_preemptive.cpp
/// \brief Preemptive RTA tests: textbook response-time examples, CRPD
///        inflation, utilization bounds, the control-timing view, and the
///        period-scaling search.

#include <gtest/gtest.h>

#include <cmath>

#include "sched/preemptive.hpp"

namespace {

using catsched::sched::min_feasible_period_scale;
using catsched::sched::PreemptiveTask;
using catsched::sched::preemptive_timing;
using catsched::sched::rate_monotonic_order;
using catsched::sched::response_time_analysis;
using catsched::sched::response_time_analysis_rm;

TEST(RmOrder, SortsByPeriodStable) {
  const std::vector<PreemptiveTask> tasks = {
      {10.0, 1.0, 0.0}, {5.0, 1.0, 0.0}, {10.0, 2.0, 0.0}, {2.0, 0.5, 0.0}};
  const auto order = rate_monotonic_order(tasks);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 0, 2}));
}

TEST(Rta, TextbookExampleMatchesHandComputation) {
  // Classic Liu/Layland-style set: T = {4, 6, 12}, C = {1, 2, 3}.
  // R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3; R3 = 3 + ceil(R/4)*1 + ceil(R/6)*2
  //   iteration: 3 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+4=9 -> 3+3+4=10 ->
  //              3+3+4=10 (fix).
  const std::vector<PreemptiveTask> tasks = {
      {4.0, 1.0, 0.0}, {6.0, 2.0, 0.0}, {12.0, 3.0, 0.0}};
  const auto rta = response_time_analysis_rm(tasks);
  ASSERT_TRUE(rta.all_schedulable);
  EXPECT_DOUBLE_EQ(rta.response[0].value, 1.0);
  EXPECT_DOUBLE_EQ(rta.response[1].value, 3.0);
  EXPECT_DOUBLE_EQ(rta.response[2].value, 10.0);
  EXPECT_NEAR(rta.utilization, 1.0 / 4 + 2.0 / 6 + 3.0 / 12, 1e-12);
}

TEST(Rta, CrpdInflatesLowerPriorityResponse) {
  std::vector<PreemptiveTask> tasks = {{4.0, 1.0, 0.0},
                                       {12.0, 3.0, 0.0}};
  const auto clean = response_time_analysis_rm(tasks);
  ASSERT_TRUE(clean.all_schedulable);
  tasks[0].crpd = 0.5;  // every preemption by task 0 now costs extra
  const auto crpd = response_time_analysis_rm(tasks);
  ASSERT_TRUE(crpd.all_schedulable);
  EXPECT_DOUBLE_EQ(crpd.response[0].value, clean.response[0].value);
  EXPECT_GT(crpd.response[1].value, clean.response[1].value);
}

TEST(Rta, DetectsUnschedulableSet) {
  // Utilization > 1 can never be schedulable.
  const std::vector<PreemptiveTask> tasks = {{2.0, 1.5, 0.0},
                                             {3.0, 1.5, 0.0}};
  const auto rta = response_time_analysis_rm(tasks);
  EXPECT_FALSE(rta.all_schedulable);
  EXPECT_FALSE(rta.response[1].schedulable);
  EXPECT_TRUE(std::isinf(rta.response[1].value));
}

TEST(Rta, CrpdCanBreakSchedulability) {
  // Feasible without CRPD, infeasible with it.
  std::vector<PreemptiveTask> tasks = {{2.0, 1.0, 0.0}, {4.0, 1.9, 0.0}};
  EXPECT_TRUE(response_time_analysis_rm(tasks).all_schedulable);
  tasks[0].crpd = 0.2;
  EXPECT_FALSE(response_time_analysis_rm(tasks).all_schedulable);
}

TEST(Rta, RejectsBadArguments) {
  EXPECT_THROW(response_time_analysis_rm({}), std::invalid_argument);
  EXPECT_THROW(response_time_analysis_rm({{0.0, 1.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      response_time_analysis({{1.0, 0.5, 0.0}}, {0, 0}),
      std::invalid_argument);
}

TEST(PreemptiveTiming, ExposesPeriodAndResponseAsControlTiming) {
  const std::vector<PreemptiveTask> tasks = {
      {4.0e-3, 1.0e-3, 0.0}, {6.0e-3, 2.0e-3, 0.0}};
  const auto rta = response_time_analysis_rm(tasks);
  ASSERT_TRUE(rta.all_schedulable);
  const auto timing = preemptive_timing(tasks, rta);
  ASSERT_EQ(timing.apps.size(), 2u);
  EXPECT_DOUBLE_EQ(timing.apps[0].intervals[0].h, 4.0e-3);
  EXPECT_DOUBLE_EQ(timing.apps[0].intervals[0].tau, 1.0e-3);
  EXPECT_DOUBLE_EQ(timing.apps[1].intervals[0].h, 6.0e-3);
  EXPECT_DOUBLE_EQ(timing.apps[1].intervals[0].tau,
                   rta.response[1].value);
  // tau <= h always holds for a schedulable set.
  for (const auto& app : timing.apps) {
    EXPECT_LE(app.intervals[0].tau, app.intervals[0].h);
  }
}

TEST(PreemptiveTiming, ThrowsOnUnschedulableInput) {
  const std::vector<PreemptiveTask> tasks = {{2.0, 1.5, 0.0},
                                             {3.0, 1.5, 0.0}};
  const auto rta = response_time_analysis_rm(tasks);
  EXPECT_THROW(preemptive_timing(tasks, rta), std::invalid_argument);
}

TEST(PeriodScale, AlreadyFeasibleNeedsNoScaling) {
  const std::vector<PreemptiveTask> tasks = {{4.0, 1.0, 0.0},
                                             {8.0, 2.0, 0.0}};
  EXPECT_DOUBLE_EQ(min_feasible_period_scale(tasks), 1.0);
}

TEST(PeriodScale, FindsTheFeasibilityBoundary) {
  // Two tasks with U = 1.25: scaling periods by x scales U by 1/x, so
  // schedulability needs roughly x >= 1.25 (exact bound depends on RTA).
  const std::vector<PreemptiveTask> tasks = {{2.0, 1.0, 0.0},
                                             {4.0, 3.0, 0.0}};
  const double x = min_feasible_period_scale(tasks);
  EXPECT_GT(x, 1.0);
  EXPECT_LT(x, 3.0);
  // Check the boundary really is feasible...
  std::vector<PreemptiveTask> scaled = tasks;
  for (auto& t : scaled) t.period *= x;
  EXPECT_TRUE(response_time_analysis_rm(scaled).all_schedulable);
  // ...and slightly below is not.
  std::vector<PreemptiveTask> below = tasks;
  for (auto& t : below) t.period *= (x - 0.05);
  EXPECT_FALSE(response_time_analysis_rm(below).all_schedulable);
}

TEST(PeriodScale, ReportsInfinityWhenHopeless) {
  // CRPD so large that even huge periods stay infeasible (CRPD scales
  // with each preemption, and there is always at least one).
  const std::vector<PreemptiveTask> tasks = {{1.0, 0.6, 10.0},
                                             {1.5, 0.9, 0.0}};
  EXPECT_TRUE(std::isinf(min_feasible_period_scale(tasks, 4.0)));
}

}  // namespace
