/// \file test_robustness.cpp
/// \brief Robustness-study tests: zero-spread degenerates to the nominal
///        evaluation, determinism under a fixed seed, monotone degradation
///        with spread, and the stability-margin search.

#include <gtest/gtest.h>

#include "control/design.hpp"
#include "control/robustness.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::DesignOptions;
using catsched::control::DesignSpec;
using catsched::control::PhaseGains;
using catsched::control::robustness_study;
using catsched::control::RobustnessOptions;
using catsched::control::RobustnessReport;
using catsched::control::stability_margin;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

struct Fixture {
  DesignSpec spec;
  std::vector<Interval> intervals;
  PhaseGains gains;
};

/// One shared design (PSO is the slow part; run it once for the suite).
const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    f.spec.plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
    f.spec.plant.b = Matrix{{0.0}, {200.0}};
    f.spec.plant.c = Matrix{{1.0, 0.0}};
    f.spec.umax = 50.0;
    f.spec.r = 0.3;
    f.spec.smax = 0.5;
    f.intervals = {{0.010, 0.010, false}, {0.026, 0.006, true}};
    DesignOptions opts;
    opts.pso.particles = 24;
    opts.pso.iterations = 40;
    opts.scale_budget_with_dims = false;
    opts.pso_restarts = 1;
    const auto res =
        catsched::control::design_controller(f.spec, f.intervals, opts);
    f.gains = res.gains;
    return f;
  }();
  return fx;
}

TEST(Robustness, ZeroSpreadReproducesNominal) {
  const auto& fx = fixture();
  RobustnessOptions opts;
  opts.relative_spread = 0.0;
  opts.trials = 5;
  const RobustnessReport r =
      robustness_study(fx.spec, fx.intervals, fx.gains, opts);
  EXPECT_EQ(r.stable, r.trials);
  EXPECT_EQ(r.settled, r.trials);
  EXPECT_NEAR(r.worst_settling, r.nominal_settling, 1e-12);
  EXPECT_NEAR(r.mean_settling, r.nominal_settling, 1e-12);
}

TEST(Robustness, DeterministicForFixedSeed) {
  const auto& fx = fixture();
  RobustnessOptions opts;
  opts.relative_spread = 0.08;
  opts.trials = 30;
  opts.seed = 77;
  const auto r1 = robustness_study(fx.spec, fx.intervals, fx.gains, opts);
  const auto r2 = robustness_study(fx.spec, fx.intervals, fx.gains, opts);
  EXPECT_EQ(r1.stable, r2.stable);
  EXPECT_EQ(r1.settled, r2.settled);
  EXPECT_DOUBLE_EQ(r1.worst_settling, r2.worst_settling);
  ASSERT_EQ(r1.settling_samples.size(), r2.settling_samples.size());
}

TEST(Robustness, SmallSpreadKeepsLoopStable) {
  const auto& fx = fixture();
  RobustnessOptions opts;
  opts.relative_spread = 0.02;
  opts.trials = 50;
  const auto r = robustness_study(fx.spec, fx.intervals, fx.gains, opts);
  EXPECT_EQ(r.stable, r.trials);
  EXPECT_GT(r.settled, 45);  // nearly all trials still settle
  EXPECT_GE(r.worst_settling, r.nominal_settling - 1e-12);
}

TEST(Robustness, DegradationGrowsWithSpread) {
  const auto& fx = fixture();
  RobustnessOptions small;
  small.relative_spread = 0.02;
  small.trials = 60;
  RobustnessOptions large = small;
  large.relative_spread = 0.25;
  const auto rs = robustness_study(fx.spec, fx.intervals, fx.gains, small);
  const auto rl = robustness_study(fx.spec, fx.intervals, fx.gains, large);
  // Larger spread cannot improve the worst case or the deadline count.
  EXPECT_GE(rs.deadline_fraction(), rl.deadline_fraction());
  EXPECT_LE(rs.worst_settling, rl.worst_settling + 1e-12);
}

TEST(Robustness, StabilityMarginIsPositiveAndBounded) {
  const auto& fx = fixture();
  RobustnessOptions opts;
  opts.trials = 25;
  const double margin = stability_margin(fx.spec, fx.intervals, fx.gains,
                                         opts, 0.5, 0.02);
  EXPECT_GT(margin, 0.0);
  EXPECT_LE(margin, 0.5);
}

}  // namespace
