/// \file test_scenarios.cpp
/// \brief Disturbance-rejection and reference-tracking scenario tests, plus
///        the ASCII Gantt renderer.

#include <gtest/gtest.h>

#include <cmath>

#include "control/design.hpp"
#include "control/scenarios.hpp"
#include "sched/gantt.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::DesignOptions;
using catsched::control::DesignSpec;
using catsched::control::disturbance_rejection;
using catsched::control::DisturbanceOptions;
using catsched::control::PhaseGains;
using catsched::control::track_reference;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

struct Fixture {
  DesignSpec spec;
  std::vector<Interval> intervals;
  PhaseGains gains;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    f.spec.plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
    f.spec.plant.b = Matrix{{0.0}, {200.0}};
    f.spec.plant.c = Matrix{{1.0, 0.0}};
    f.spec.umax = 50.0;
    f.spec.r = 0.3;
    f.spec.smax = 0.5;
    f.intervals = {{0.010, 0.010, false}, {0.026, 0.006, true}};
    DesignOptions opts;
    opts.pso.particles = 24;
    opts.pso.iterations = 40;
    opts.pso_restarts = 1;
    opts.scale_budget_with_dims = false;
    f.gains = catsched::control::design_controller(f.spec, f.intervals,
                                                   opts)
                  .gains;
    return f;
  }();
  return fx;
}

TEST(Disturbance, ZeroMagnitudeNeverLeavesTheBand) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.magnitude = 0.0;
  opts.at_time = 0.1;
  opts.duration = 0.05;
  opts.horizon = 0.6;
  const auto res = disturbance_rejection(fx.spec.plant, fx.intervals,
                                         fx.gains, fx.spec.r, opts);
  EXPECT_TRUE(res.recovered);
  EXPECT_NEAR(res.recovery_time, 0.0, 1e-12);
  EXPECT_LT(res.peak_deviation, 0.02 * fx.spec.r + 1e-9);
}

TEST(Disturbance, StepHitIsRejectedAndRecoveryMeasured) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.magnitude = 5.0;
  opts.at_time = 0.1;
  opts.duration = 0.08;
  opts.horizon = 1.0;
  const auto res = disturbance_rejection(fx.spec.plant, fx.intervals,
                                         fx.gains, fx.spec.r, opts);
  EXPECT_GT(res.peak_deviation, 0.02 * fx.spec.r);  // it really hit
  EXPECT_TRUE(res.recovered);
  EXPECT_GT(res.recovery_time, 0.0);
  EXPECT_LT(res.recovery_time, 0.5);
}

TEST(Disturbance, LargerHitDeviatesMore) {
  const auto& fx = fixture();
  DisturbanceOptions small;
  small.magnitude = 2.0;
  small.at_time = 0.1;
  small.duration = 0.08;
  small.horizon = 1.0;
  DisturbanceOptions large = small;
  large.magnitude = 8.0;
  const auto rs = disturbance_rejection(fx.spec.plant, fx.intervals,
                                        fx.gains, fx.spec.r, small);
  const auto rl = disturbance_rejection(fx.spec.plant, fx.intervals,
                                        fx.gains, fx.spec.r, large);
  EXPECT_GT(rl.peak_deviation, rs.peak_deviation);
}

TEST(Disturbance, RejectsHorizonEndingInsideTheHit) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.at_time = 0.1;
  opts.duration = 0.2;
  opts.horizon = 0.25;
  EXPECT_THROW(disturbance_rejection(fx.spec.plant, fx.intervals, fx.gains,
                                     fx.spec.r, opts),
               std::invalid_argument);
}

TEST(Tracking, ConstantReferenceMatchesStepBehaviour) {
  const auto& fx = fixture();
  const auto res = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [&](double) { return fx.spec.r; }, 1.2, 0.5);
  EXPECT_LT(res.rms_error, 0.01 * fx.spec.r);  // settled long before 50%
}

TEST(Tracking, SlowRampIsFollowedCloselyFastSineIsNot) {
  const auto& fx = fixture();
  const auto ramp = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.1 * t; }, 2.0, 0.3);
  // Steady ramp-following error exists but stays small vs signal scale.
  EXPECT_LT(ramp.rms_error, 0.05);

  const auto slow_sine = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.2 * std::sin(2.0 * M_PI * 0.5 * t); }, 2.0,
      0.3);
  const auto fast_sine = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.2 * std::sin(2.0 * M_PI * 8.0 * t); }, 2.0,
      0.3);
  // Bandwidth is finite: tracking a faster reference is strictly worse.
  EXPECT_GT(fast_sine.rms_error, slow_sine.rms_error);
}

TEST(Tracking, RejectsBadWarmup) {
  const auto& fx = fixture();
  EXPECT_THROW(track_reference(fx.spec.plant, fx.intervals, fx.gains,
                               [](double) { return 1.0; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Gantt, RendersColdAndWarmDistinctly) {
  using catsched::sched::InterleavedSchedule;
  using catsched::sched::PeriodicSchedule;
  const std::vector<catsched::sched::AppWcet> wcets = {{300e-6, 100e-6},
                                                       {200e-6, 80e-6}};
  const auto schedule =
      InterleavedSchedule::from_periodic(PeriodicSchedule({2, 2}));
  const std::string strip = catsched::sched::render_gantt(wcets, schedule, 2);
  // Cold leader 'A' and warm follower 'a' both appear; same for B.
  EXPECT_NE(strip.find('A'), std::string::npos);
  EXPECT_NE(strip.find('a'), std::string::npos);
  EXPECT_NE(strip.find('B'), std::string::npos);
  EXPECT_NE(strip.find('b'), std::string::npos);
  EXPECT_NE(strip.find("us"), std::string::npos);
}

TEST(Gantt, RejectsDegenerateInput) {
  EXPECT_THROW(catsched::sched::render_gantt({}, 2), std::invalid_argument);
  std::vector<catsched::sched::ScheduledTask> tl(1);
  tl[0].app = 5;  // out of range for num_apps = 2
  tl[0].start = 0.0;
  tl[0].end = 1.0;
  EXPECT_THROW(catsched::sched::render_gantt(tl, 2), std::invalid_argument);
}

}  // namespace
