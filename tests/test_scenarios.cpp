/// \file test_scenarios.cpp
/// \brief Disturbance-rejection and reference-tracking scenario tests, plus
///        the ASCII Gantt renderer.

#include <gtest/gtest.h>

#include <cmath>

#include "control/c2d.hpp"
#include "control/design.hpp"
#include "control/lti.hpp"
#include "control/scenarios.hpp"
#include "sched/gantt.hpp"

namespace {

using catsched::control::ContinuousLTI;
using catsched::control::DesignOptions;
using catsched::control::DesignSpec;
using catsched::control::disturbance_rejection;
using catsched::control::DisturbanceOptions;
using catsched::control::PhaseGains;
using catsched::control::track_reference;
using catsched::linalg::Matrix;
using catsched::sched::Interval;

struct Fixture {
  DesignSpec spec;
  std::vector<Interval> intervals;
  PhaseGains gains;
};

const Fixture& fixture() {
  static const Fixture fx = [] {
    Fixture f;
    f.spec.plant.a = Matrix{{0.0, 1.0}, {0.0, -10.0}};
    f.spec.plant.b = Matrix{{0.0}, {200.0}};
    f.spec.plant.c = Matrix{{1.0, 0.0}};
    f.spec.umax = 50.0;
    f.spec.r = 0.3;
    f.spec.smax = 0.5;
    f.intervals = {{0.010, 0.010, false}, {0.026, 0.006, true}};
    DesignOptions opts;
    opts.pso.particles = 24;
    opts.pso.iterations = 40;
    opts.pso_restarts = 1;
    opts.scale_budget_with_dims = false;
    f.gains = catsched::control::design_controller(f.spec, f.intervals,
                                                   opts)
                  .gains;
    return f;
  }();
  return fx;
}

TEST(Disturbance, ZeroMagnitudeNeverLeavesTheBand) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.magnitude = 0.0;
  opts.at_time = 0.1;
  opts.duration = 0.05;
  opts.horizon = 0.6;
  const auto res = disturbance_rejection(fx.spec.plant, fx.intervals,
                                         fx.gains, fx.spec.r, opts);
  EXPECT_TRUE(res.recovered);
  EXPECT_NEAR(res.recovery_time, 0.0, 1e-12);
  EXPECT_LT(res.peak_deviation, 0.02 * fx.spec.r + 1e-9);
}

TEST(Disturbance, StepHitIsRejectedAndRecoveryMeasured) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.magnitude = 5.0;
  opts.at_time = 0.1;
  opts.duration = 0.08;
  opts.horizon = 1.0;
  const auto res = disturbance_rejection(fx.spec.plant, fx.intervals,
                                         fx.gains, fx.spec.r, opts);
  EXPECT_GT(res.peak_deviation, 0.02 * fx.spec.r);  // it really hit
  EXPECT_TRUE(res.recovered);
  EXPECT_GT(res.recovery_time, 0.0);
  EXPECT_LT(res.recovery_time, 0.5);
}

TEST(Disturbance, LargerHitDeviatesMore) {
  const auto& fx = fixture();
  DisturbanceOptions small;
  small.magnitude = 2.0;
  small.at_time = 0.1;
  small.duration = 0.08;
  small.horizon = 1.0;
  DisturbanceOptions large = small;
  large.magnitude = 8.0;
  const auto rs = disturbance_rejection(fx.spec.plant, fx.intervals,
                                        fx.gains, fx.spec.r, small);
  const auto rl = disturbance_rejection(fx.spec.plant, fx.intervals,
                                        fx.gains, fx.spec.r, large);
  EXPECT_GT(rl.peak_deviation, rs.peak_deviation);
}

TEST(Disturbance, RejectsHorizonEndingInsideTheHit) {
  const auto& fx = fixture();
  DisturbanceOptions opts;
  opts.at_time = 0.1;
  opts.duration = 0.2;
  opts.horizon = 0.25;
  EXPECT_THROW(disturbance_rejection(fx.spec.plant, fx.intervals, fx.gains,
                                     fx.spec.r, opts),
               std::invalid_argument);
}

TEST(Tracking, ConstantReferenceMatchesStepBehaviour) {
  const auto& fx = fixture();
  const auto res = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [&](double) { return fx.spec.r; }, 1.2, 0.5);
  EXPECT_LT(res.rms_error, 0.01 * fx.spec.r);  // settled long before 50%
}

TEST(Tracking, SlowRampIsFollowedCloselyFastSineIsNot) {
  const auto& fx = fixture();
  const auto ramp = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.1 * t; }, 2.0, 0.3);
  // Steady ramp-following error exists but stays small vs signal scale.
  EXPECT_LT(ramp.rms_error, 0.05);

  const auto slow_sine = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.2 * std::sin(2.0 * M_PI * 0.5 * t); }, 2.0,
      0.3);
  const auto fast_sine = track_reference(
      fx.spec.plant, fx.intervals, fx.gains,
      [](double t) { return 0.2 * std::sin(2.0 * M_PI * 8.0 * t); }, 2.0,
      0.3);
  // Bandwidth is finite: tracking a faster reference is strictly worse.
  EXPECT_GT(fast_sine.rms_error, slow_sine.rms_error);
}

TEST(Tracking, RejectsBadWarmup) {
  const auto& fx = fixture();
  EXPECT_THROW(track_reference(fx.spec.plant, fx.intervals, fx.gains,
                               [](double) { return 1.0; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Gantt, RendersColdAndWarmDistinctly) {
  using catsched::sched::InterleavedSchedule;
  using catsched::sched::PeriodicSchedule;
  const std::vector<catsched::sched::AppWcet> wcets = {{300e-6, 100e-6},
                                                       {200e-6, 80e-6}};
  const auto schedule =
      InterleavedSchedule::from_periodic(PeriodicSchedule({2, 2}));
  const std::string strip = catsched::sched::render_gantt(wcets, schedule, 2);
  // Cold leader 'A' and warm follower 'a' both appear; same for B.
  EXPECT_NE(strip.find('A'), std::string::npos);
  EXPECT_NE(strip.find('a'), std::string::npos);
  EXPECT_NE(strip.find('B'), std::string::npos);
  EXPECT_NE(strip.find('b'), std::string::npos);
  EXPECT_NE(strip.find("us"), std::string::npos);
}

TEST(PlantFamilies, EveryFamilyIsControllableAtItsDefaultDiscretization) {
  // The workload generator's validity contract: any family instance it can
  // sample must be controllable both in continuous time and — what the
  // design kernel actually sees — as the discrete (Ad, Btot) pair at the
  // family's default sampling period, including a half-period
  // sensing-to-actuation delay. Sweep the generator's parameter box
  // corners plus its center.
  using catsched::control::discretize_interval;
  using catsched::control::family_default_period;
  using catsched::control::family_timescale;
  using catsched::control::is_controllable;
  using catsched::control::kAllPlantFamilies;
  using catsched::control::make_family_plant;
  using catsched::control::plant_family_name;

  const double w0s[] = {80.0, 165.0, 250.0};     // generator min/mid/max
  const double zetas[] = {0.15, 0.325, 0.5};
  const double gains[] = {1.0, 5.5, 10.0};
  for (const auto family : kAllPlantFamilies) {
    for (const double w0 : w0s) {
      for (const double zeta : zetas) {
        for (const double gain : gains) {
          SCOPED_TRACE(std::string(plant_family_name(family)) + " w0=" +
                       std::to_string(w0) + " zeta=" + std::to_string(zeta) +
                       " gain=" + std::to_string(gain));
          const ContinuousLTI plant =
              make_family_plant(family, w0, zeta, gain);
          EXPECT_TRUE(is_controllable(plant.a, plant.b));

          const double h = family_default_period(family, w0, zeta);
          ASSERT_GT(h, 0.0);
          EXPECT_LT(h, family_timescale(family, w0, zeta));
          const auto pd = discretize_interval(plant, h, h / 2.0);
          EXPECT_TRUE(is_controllable(pd.ad, pd.btot));
          // And with the full interval consumed by sensing (tau == h, so
          // only the held input acts): still controllable through b1.
          const auto lagged = discretize_interval(plant, h, h);
          EXPECT_TRUE(is_controllable(lagged.ad, lagged.b1));
        }
      }
    }
  }
}

TEST(PlantFamilies, NonIntegratingFamiliesHoldAUnitEquilibrium) {
  using catsched::control::equilibrium_at;
  using catsched::control::make_family_plant;
  using catsched::control::PlantFamily;
  // The step-response scenarios regulate to y = r; the families meant to
  // have finite DC gain must admit that equilibrium (the integrating one
  // holds any y with u = 0 instead).
  for (const auto family : {PlantFamily::underdamped_second_order,
                            PlantFamily::first_order_lag,
                            PlantFamily::resonant_with_actuator_lag}) {
    const ContinuousLTI plant = make_family_plant(family, 120.0, 0.3, 4.0);
    const auto eq = equilibrium_at(plant, 1.0);
    // DC gain is `gain`, so holding y = 1 needs u = 1 / gain.
    EXPECT_NEAR(eq.u, 0.25, 1e-9);
  }
  const ContinuousLTI integ = make_family_plant(
      PlantFamily::damped_integrator, 120.0, 0.3, 4.0);
  const auto eq = equilibrium_at(integ, 1.0);
  EXPECT_NEAR(eq.u, 0.0, 1e-9);
}

TEST(PlantFamilies, TimescaleShrinksWithFrequencyAndPeriodIsAFraction) {
  using catsched::control::family_default_period;
  using catsched::control::family_timescale;
  using catsched::control::kAllPlantFamilies;
  for (const auto family : kAllPlantFamilies) {
    const double slow = family_timescale(family, 80.0, 0.3);
    const double fast = family_timescale(family, 250.0, 0.3);
    EXPECT_GT(slow, fast);
    EXPECT_GT(fast, 0.0);
    EXPECT_NEAR(family_default_period(family, 80.0, 0.3), slow / 40.0,
                1e-12 * slow);
  }
}

TEST(PlantFamilies, RejectsDegenerateParameters) {
  using catsched::control::make_family_plant;
  using catsched::control::PlantFamily;
  EXPECT_THROW(
      make_family_plant(PlantFamily::first_order_lag, 0.0, 0.3, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_family_plant(PlantFamily::first_order_lag, -5.0, 0.3, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_family_plant(PlantFamily::underdamped_second_order, 100.0, -0.1,
                        1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_family_plant(PlantFamily::damped_integrator, 100.0, 0.3, 0.0),
      std::invalid_argument);
}

TEST(Gantt, RejectsDegenerateInput) {
  EXPECT_THROW(catsched::sched::render_gantt({}, 2), std::invalid_argument);
  std::vector<catsched::sched::ScheduledTask> tl(1);
  tl[0].app = 5;  // out of range for num_apps = 2
  tl[0].start = 0.0;
  tl[0].end = 1.0;
  EXPECT_THROW(catsched::sched::render_gantt(tl, 2), std::invalid_argument);
}

}  // namespace
