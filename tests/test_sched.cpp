// Unit tests for schedule types and timing derivation (paper Sec. II-C).

#include <gtest/gtest.h>

#include "sched/schedule.hpp"
#include "sched/timing.hpp"

using namespace catsched::sched;

namespace {

// The paper's Table I WCETs in seconds.
const std::vector<AppWcet> kDate18 = {
    {907.55e-6, 452.15e-6}, {645.25e-6, 175.00e-6}, {749.15e-6, 234.35e-6}};

}  // namespace

TEST(PeriodicSchedule, ValidationAndBasics) {
  PeriodicSchedule s({2, 1, 3});
  EXPECT_EQ(s.num_apps(), 3u);
  EXPECT_EQ(s.tasks_per_period(), 6u);
  EXPECT_EQ(s.to_string(), "(2, 1, 3)");
  EXPECT_EQ(s.task_sequence(),
            (std::vector<std::size_t>{0, 0, 1, 2, 2, 2}));
  EXPECT_THROW(PeriodicSchedule(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(PeriodicSchedule({1, 0}), std::invalid_argument);
  EXPECT_EQ(s.with_burst(1, 4).burst(1), 4);
  EXPECT_THROW(s.with_burst(1, 0), std::invalid_argument);
  EXPECT_THROW(s.with_burst(9, 1), std::invalid_argument);
}

TEST(InterleavedSchedule, ValidationAndBasics) {
  InterleavedSchedule s({{0, 2}, {1, 1}, {0, 1}, {2, 2}}, 3);
  EXPECT_EQ(s.tasks_of(0), 3);
  EXPECT_EQ(s.task_sequence(),
            (std::vector<std::size_t>{0, 0, 1, 0, 2, 2}));
  // Adjacent same-app segments rejected (incl. cyclic adjacency).
  EXPECT_THROW(InterleavedSchedule({{0, 1}, {0, 1}}, 1), std::invalid_argument);
  EXPECT_THROW(InterleavedSchedule({{0, 1}, {1, 1}, {0, 1}}, 2),
               std::invalid_argument);  // wraps: last app == first app
  // Every app must appear.
  EXPECT_THROW(InterleavedSchedule({{0, 1}}, 2), std::invalid_argument);
  EXPECT_THROW(InterleavedSchedule({{5, 1}}, 2), std::invalid_argument);
}

TEST(Timing, PaperExampleSchedule222) {
  // Reproduce the relationships of paper Fig. 4 for (2, 2, 2).
  const auto t = derive_timing(kDate18, PeriodicSchedule({2, 2, 2}));
  ASSERT_EQ(t.apps.size(), 3u);
  // Schedule period = sum over apps of cold + warm.
  const double period = (907.55 + 452.15 + 645.25 + 175.00 + 749.15 + 234.35) *
                        1e-6;
  EXPECT_NEAR(t.period, period, 1e-12);

  // C1: h1(1) = Ewc1(1), h1(2) = Ewc1(2) + Delta1.
  const auto& c1 = t.apps[0];
  ASSERT_EQ(c1.intervals.size(), 2u);
  EXPECT_NEAR(c1.intervals[0].h, 907.55e-6, 1e-12);
  EXPECT_NEAR(c1.intervals[0].tau, 907.55e-6, 1e-12);
  EXPECT_FALSE(c1.intervals[0].warm);
  const double delta1 = (645.25 + 175.00 + 749.15 + 234.35) * 1e-6;
  EXPECT_NEAR(c1.intervals[1].h, 452.15e-6 + delta1, 1e-12);
  EXPECT_NEAR(c1.intervals[1].tau, 452.15e-6, 1e-12);
  EXPECT_TRUE(c1.intervals[1].warm);

  // tau never exceeds h; per-app interval sums equal the period.
  for (const auto& app : t.apps) {
    EXPECT_NEAR(app.period(), period, 1e-12);
    for (const auto& iv : app.intervals) {
      EXPECT_LE(iv.tau, iv.h + 1e-15);
    }
  }
}

TEST(Timing, RoundRobinAllCold) {
  const auto t = derive_timing(kDate18, PeriodicSchedule({1, 1, 1}));
  const double period = (907.55 + 645.25 + 749.15) * 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(t.apps[i].intervals.size(), 1u);
    EXPECT_FALSE(t.apps[i].intervals[0].warm);
    EXPECT_NEAR(t.apps[i].intervals[0].h, period, 1e-12);
    EXPECT_NEAR(t.apps[i].intervals[0].tau, kDate18[i].cold_seconds, 1e-12);
  }
}

TEST(Timing, SingleAppAllWarm) {
  // One application alone: in steady state even the "first" task reuses its
  // own cache image.
  const auto t = derive_timing({{100e-6, 40e-6}}, PeriodicSchedule({3}));
  for (const auto& iv : t.apps[0].intervals) {
    EXPECT_TRUE(iv.warm);
    EXPECT_NEAR(iv.tau, 40e-6, 1e-15);
  }
  EXPECT_NEAR(t.period, 120e-6, 1e-15);
}

TEST(Timing, HmaxAndLongestInterval) {
  const auto t = derive_timing(kDate18, PeriodicSchedule({3, 2, 3}));
  const auto& c1 = t.apps[0];
  EXPECT_EQ(c1.longest_interval(), 2u);  // the idle-gap interval
  EXPECT_NEAR(c1.h_max(), c1.intervals[2].h, 1e-15);
  EXPECT_GT(c1.idle_total(), 0.0);
}

TEST(Timing, IdleFeasibilityTableII) {
  const std::vector<double> tidle = {3.4e-3, 3.9e-3, 3.5e-3};
  EXPECT_TRUE(idle_feasible(derive_timing(kDate18, PeriodicSchedule({1, 1, 1})),
                            tidle));
  EXPECT_TRUE(idle_feasible(derive_timing(kDate18, PeriodicSchedule({3, 2, 3})),
                            tidle));
  // Blowing up one burst must eventually violate another app's idle bound.
  EXPECT_FALSE(idle_feasible(
      derive_timing(kDate18, PeriodicSchedule({9, 1, 1})), tidle));
  EXPECT_THROW(idle_feasible(derive_timing(kDate18, PeriodicSchedule({1, 1, 1})),
                             {1.0}),
               std::invalid_argument);
}

TEST(Timing, InterleavedColdWarmClassification) {
  // (C1 x 2, C2 x 1, C1 x 1, C3 x 1): the lone C1 task is cold (C2 ran in
  // between); C1's burst leader is cold; second of burst warm.
  InterleavedSchedule s({{0, 2}, {1, 1}, {0, 1}, {2, 1}}, 3);
  const auto t = derive_timing(kDate18, s);
  const auto& c1 = t.apps[0];
  ASSERT_EQ(c1.intervals.size(), 3u);
  EXPECT_FALSE(c1.intervals[0].warm);
  EXPECT_TRUE(c1.intervals[1].warm);
  EXPECT_FALSE(c1.intervals[2].warm);
}

TEST(Timing, InterleavedMatchesPeriodicWhenEquivalent) {
  const auto tp = derive_timing(kDate18, PeriodicSchedule({2, 2, 2}));
  const auto ti = derive_timing(
      kDate18, InterleavedSchedule::from_periodic(PeriodicSchedule({2, 2, 2})));
  ASSERT_EQ(tp.apps.size(), ti.apps.size());
  EXPECT_NEAR(tp.period, ti.period, 1e-15);
  for (std::size_t i = 0; i < tp.apps.size(); ++i) {
    ASSERT_EQ(tp.apps[i].intervals.size(), ti.apps[i].intervals.size());
    for (std::size_t j = 0; j < tp.apps[i].intervals.size(); ++j) {
      EXPECT_NEAR(tp.apps[i].intervals[j].h, ti.apps[i].intervals[j].h, 1e-15);
      EXPECT_NEAR(tp.apps[i].intervals[j].tau, ti.apps[i].intervals[j].tau,
                  1e-15);
    }
  }
}

TEST(Timing, RejectsBadWcets) {
  EXPECT_THROW(derive_timing({{0.0, 0.0}}, PeriodicSchedule({1})),
               std::invalid_argument);
  EXPECT_THROW(derive_timing({{1.0, 2.0}}, PeriodicSchedule({1})),
               std::invalid_argument);  // warm > cold
  EXPECT_THROW(derive_timing(kDate18, PeriodicSchedule({1, 1})),
               std::invalid_argument);  // count mismatch
}

TEST(Timeline, BuildTimelineStartsColdThenSteady) {
  const auto tl = build_timeline(
      kDate18, InterleavedSchedule::from_periodic(PeriodicSchedule({2, 1, 1})),
      2);
  ASSERT_EQ(tl.size(), 8u);
  // Very first task is cold even though in steady state it would be led
  // into by C3 (different app), which also makes it cold here.
  EXPECT_FALSE(tl[0].warm);
  EXPECT_TRUE(tl[1].warm);
  EXPECT_NEAR(tl[1].end - tl[1].start, kDate18[0].warm_seconds, 1e-15);
  // Tasks are contiguous.
  for (std::size_t k = 1; k < tl.size(); ++k) {
    EXPECT_NEAR(tl[k].start, tl[k - 1].end, 1e-15);
  }
}

// Parameterized sweep: for every (m1, m2) burst combination, timing
// invariants hold (period consistency, tau <= h, warm flags pattern).
class TimingSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TimingSweep, Invariants) {
  const auto [m1, m2] = GetParam();
  const std::vector<AppWcet> w = {{1.0e-3, 0.4e-3}, {0.8e-3, 0.3e-3}};
  const auto t = derive_timing(w, PeriodicSchedule({m1, m2}));
  const double period = 1.0e-3 + (m1 - 1) * 0.4e-3 + 0.8e-3 + (m2 - 1) * 0.3e-3;
  EXPECT_NEAR(t.period, period, 1e-12);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(t.apps[i].period(), period, 1e-12);
    const auto& ivs = t.apps[i].intervals;
    for (std::size_t j = 0; j < ivs.size(); ++j) {
      EXPECT_LE(ivs[j].tau, ivs[j].h + 1e-15);
      EXPECT_EQ(ivs[j].warm, j != 0);  // burst leader cold, rest warm
    }
    // Idle gap is on the last task of the burst.
    EXPECT_EQ(t.apps[i].longest_interval(), ivs.size() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bursts, TimingSweep,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 4}, std::pair{2, 2},
                      std::pair{3, 1}, std::pair{4, 5}, std::pair{7, 2}));
