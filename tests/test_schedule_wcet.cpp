/// \file test_schedule_wcet.cpp
/// \brief Schedule-dependent WCET tests: footprint/aging primitives, the
///        steady static analysis vs. the simulator, the soundness ordering
///        guaranteed-warm <= context <= cold over randomized systems and
///        cache geometries, the randomized differential against concrete
///        CacheSim replay of the same interference sequences (trace and
///        sampled structured paths), context-mask derivation, the
///        context-sensitive derive_timing overloads, analyzer memo
///        determinism at 1/2/4 threads, and evaluator/search bit-identity
///        in context mode (neighbor path and serial-vs-parallel search).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "cache/cache_model.hpp"
#include "cache/program.hpp"
#include "cache/schedule_wcet.hpp"
#include "cache/static_wcet.hpp"
#include "cache/structure.hpp"
#include "cache/wcet.hpp"
#include "core/case_study.hpp"
#include "core/interleaved_codesign.hpp"
#include "core/parallel.hpp"
#include "sched/timing.hpp"

namespace {

using catsched::core::Application;
using catsched::core::Evaluator;
using catsched::core::EvaluatorOptions;
using catsched::core::interleaved_neighbor_moves;
using catsched::core::interleaved_search;
using catsched::core::InterleavedSearchOptions;
using catsched::core::ScheduleEvaluation;
using catsched::core::SystemModel;
using catsched::sched::AppWcet;
using catsched::sched::compute_context_masks;
using catsched::sched::ContextWcetTable;
using catsched::sched::derive_timing;
using catsched::sched::InterleavedSchedule;
using catsched::sched::PeriodicSchedule;
using catsched::sched::ScheduleTiming;
using catsched::sched::TimingPattern;
namespace cache = catsched::cache;
namespace control = catsched::control;
namespace linalg = catsched::linalg;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult timing_identical(const ScheduleTiming& a,
                                            const ScheduleTiming& b) {
  if (!same_bits(a.period, b.period)) {
    return ::testing::AssertionResult(false) << "period bits differ";
  }
  if (a.apps.size() != b.apps.size()) {
    return ::testing::AssertionResult(false) << "app count differs";
  }
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const auto& ia = a.apps[i].intervals;
    const auto& ib = b.apps[i].intervals;
    if (ia.size() != ib.size()) {
      return ::testing::AssertionResult(false)
             << "app " << i << " interval count differs";
    }
    for (std::size_t j = 0; j < ia.size(); ++j) {
      if (!same_bits(ia[j].h, ib[j].h) || !same_bits(ia[j].tau, ib[j].tau) ||
          ia[j].warm != ib[j].warm) {
        return ::testing::AssertionResult(false)
               << "app " << i << " interval " << j << " differs";
      }
    }
  }
  return ::testing::AssertionResult(true);
}

cache::CacheConfig cfg(std::size_t lines, std::size_t assoc) {
  cache::CacheConfig c;
  c.num_lines = lines;
  c.associativity = assoc;
  return c;
}

/// Random trace program over lines [base, base + span): `len` fetches with
/// locality (short runs of consecutive lines) so warm reuse exists.
cache::Program random_trace(std::mt19937& rng, const char* name,
                            std::uint64_t base, std::uint64_t span,
                            std::size_t len) {
  cache::Program p;
  p.name = name;
  std::uint64_t cur = base + rng() % span;
  for (std::size_t i = 0; i < len; ++i) {
    if (rng() % 3 == 0) cur = base + rng() % span;
    p.trace.push_back(base + (cur - base) % span);
    ++cur;
  }
  return p;
}

/// Interference masks of a LINEAR (non-cyclic) occurrence list: for each
/// task k with a previous occurrence of its app, the set of apps run
/// strictly in between (the replay-side mirror of compute_context_masks).
std::vector<std::uint64_t> linear_masks(const std::vector<std::size_t>& seq,
                                        std::size_t num_apps,
                                        std::vector<bool>& has_prev) {
  std::vector<std::uint64_t> acc(num_apps, 0);
  std::vector<bool> seen(num_apps, false);
  std::vector<std::uint64_t> masks(seq.size(), 0);
  has_prev.assign(seq.size(), false);
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const std::size_t app = seq[k];
    masks[k] = acc[app];
    has_prev[k] = seen[app];
    seen[app] = true;
    for (std::size_t a = 0; a < num_apps; ++a) {
      if (a != app) acc[a] |= std::uint64_t{1} << app;
    }
    acc[app] = 0;
  }
  return masks;
}

// ------------------------------------------------------------ primitives

TEST(CacheFootprint, DistinctLinesPerSetAndUnion) {
  const cache::CacheConfig c = cfg(16, 2);  // 8 sets
  cache::Program p;
  p.trace = {0, 8, 0, 16, 3, 3, 11};  // sets 0 (lines 0,8,16) and 3 (3,11)
  const cache::CacheFootprint f = cache::compute_footprint(p, c);
  ASSERT_EQ(f.lines_per_set.size(), 8u);
  EXPECT_EQ(f.lines_per_set[0], (std::vector<std::uint64_t>{0, 8, 16}));
  EXPECT_EQ(f.lines_per_set[3], (std::vector<std::uint64_t>{3, 11}));
  EXPECT_EQ(f.total_lines(), 5u);

  cache::Program q;
  q.trace = {8, 24, 5};  // set 0: {8, 24}, set 5: {5}
  cache::CacheFootprint u = f;
  cache::merge_footprint(u, cache::compute_footprint(q, c));
  EXPECT_EQ(u.lines_per_set[0], (std::vector<std::uint64_t>{0, 8, 16, 24}));
  EXPECT_EQ(u.lines_per_set[5], (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(u.total_lines(), 7u);

  // Structured footprint covers both branch arms and loop bodies.
  const cache::Stmt tree = cache::Stmt::seq(
      {cache::Stmt::branch(cache::Stmt::block({0}), cache::Stmt::block({8})),
       cache::Stmt::loop(cache::Stmt::block({3}), 4)});
  const cache::CacheFootprint g = cache::compute_footprint(tree, c);
  EXPECT_EQ(g.lines_per_set[0], (std::vector<std::uint64_t>{0, 8}));
  EXPECT_EQ(g.lines_per_set[3], (std::vector<std::uint64_t>{3}));
}

TEST(AgeSet, AgesMustAndEvictsAtAssociativity) {
  const cache::CacheConfig c = cfg(32, 4);  // 8 sets, 4 ways
  cache::AbstractCacheState must(c, cache::AbstractCacheState::Kind::must);
  must.access(0);   // set 0
  must.access(8);   // set 0 (ages line 0 to 1, inserts 8 at 0)
  must.access(1);   // set 1
  ASSERT_EQ(must.age(0), 1u);
  ASSERT_EQ(must.age(8), 0u);

  must.age_set(0, 2);
  EXPECT_EQ(must.age(0), 3u);   // 1 + 2
  EXPECT_EQ(must.age(8), 2u);   // 0 + 2
  EXPECT_EQ(must.age(1), 0u);   // other set untouched
  must.age_set(0, 1);
  EXPECT_EQ(must.age(8), 3u);
  EXPECT_FALSE(must.contains(0));  // 3 + 1 reaches the associativity

  EXPECT_THROW(must.age_set(99, 1), std::out_of_range);
}

TEST(AgeThroughInterference, MustAgedMayUntouched) {
  const cache::CacheConfig c = cfg(32, 4);
  cache::CachePair state(c);
  state.access(0);
  state.access(8);  // set 0 holds {0 @ age 1, 8 @ age 0}
  const cache::AbstractCacheState may_before = state.may();

  cache::Program interferer;
  interferer.trace = {16, 24, 16, 32};  // 3 distinct conflicting set-0 lines
  cache::age_through_interference(state,
                                  cache::compute_footprint(interferer, c));
  EXPECT_EQ(state.must().age(8), 3u);      // 0 + 3
  EXPECT_FALSE(state.must().contains(0));  // 1 + 3 >= ways
  EXPECT_TRUE(state.may() == may_before);
}

TEST(SteadyWcet, AgreesWithSimulatorOnTraces) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t assoc = std::size_t{1} << (rng() % 3);
    const cache::CacheConfig c = cfg(64, assoc);
    const cache::Program p =
        random_trace(rng, "t", rng() % 64, 20 + rng() % 60, 40 + rng() % 200);
    const cache::WcetResult sim = cache::analyze_wcet(p, c);
    if (!sim.steady) continue;  // no sound warm bound to compare against
    const cache::StructuredProgram sp{"t", cache::Stmt::block(p.trace)};
    const cache::StaticSteadyWcet st = cache::analyze_static_steady_wcet(sp, c);
    EXPECT_EQ(st.cold.wcet_cycles, sim.cold_cycles) << "trial " << trial;
    EXPECT_EQ(st.warm.wcet_cycles, sim.warm_cycles) << "trial " << trial;
    // Single-path analysis is exact: nothing may stay unclassified.
    EXPECT_EQ(st.cold.not_classified, 0u);
  }
}

// ----------------------------------------------- soundness and ordering

TEST(ContextBounds, OrderedAndMonotoneOverRandomSystems) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t assoc = std::size_t{1} << (rng() % 3);
    const cache::CacheConfig c = cfg(64, assoc);
    const std::size_t n = 2 + rng() % 3;
    std::vector<cache::Program> programs;
    for (std::size_t a = 0; a < n; ++a) {
      // Overlapping-but-distinct footprints: contexts land in between.
      programs.push_back(random_trace(rng, "p", a * 17, 20 + rng() % 40,
                                      60 + rng() % 120));
    }
    const auto analyzer = cache::ScheduleWcetAnalyzer::from_traces(programs, c);
    const std::uint64_t all = (std::uint64_t{1} << n) - 1;
    for (std::size_t app = 0; app < n; ++app) {
      const std::uint64_t warm = analyzer->base(app).warm.wcet_cycles;
      const std::uint64_t cold = analyzer->base(app).cold.wcet_cycles;
      ASSERT_LE(warm, cold);
      EXPECT_EQ(analyzer->analyze_context(app, 0).cycles, warm);
      for (std::uint64_t mask = 0; mask <= all; ++mask) {
        const cache::ContextWcet& cw = analyzer->analyze_context(app, mask);
        EXPECT_GE(cw.cycles, warm) << "app " << app << " mask " << mask;
        EXPECT_LE(cw.cycles, cold) << "app " << app << " mask " << mask;
        // The clamp must never fire: by must-domain monotonicity the raw
        // re-analysis already lands inside [warm, cold].
        EXPECT_TRUE(cw.naturally_ordered)
            << "app " << app << " mask " << mask << " trial " << trial;
        // More interference can only raise the bound.
        for (std::size_t b = 0; b < n; ++b) {
          const std::uint64_t sub = mask & ~(std::uint64_t{1} << b);
          if (sub == mask) continue;
          EXPECT_LE(analyzer->analyze_context(app, sub).cycles, cw.cycles)
              << "app " << app << " mask " << mask << " minus bit " << b;
        }
      }
    }
  }
}

TEST(ContextBounds, NeverExceededByConcreteTraceReplay) {
  std::mt19937 rng(29);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t assoc = std::size_t{1} << (rng() % 3);
    const cache::CacheConfig c = cfg(64, assoc);
    const std::size_t n = 2 + rng() % 3;
    std::vector<cache::Program> programs;
    for (std::size_t a = 0; a < n; ++a) {
      programs.push_back(random_trace(rng, "p", a * 13, 16 + rng() % 48,
                                      50 + rng() % 150));
    }
    const auto analyzer = cache::ScheduleWcetAnalyzer::from_traces(programs, c);

    // Random task sequence containing every app, replayed concretely
    // through one shared cache — the ground truth the bounds must cover.
    std::vector<std::size_t> seq;
    for (std::size_t a = 0; a < n; ++a) seq.push_back(a);
    for (int k = 0; k < 24; ++k) seq.push_back(rng() % n);
    std::shuffle(seq.begin(), seq.end(), rng);

    const auto execs = cache::simulate_task_sequence(programs, seq, c);
    std::vector<bool> has_prev;
    const auto masks = linear_masks(seq, n, has_prev);
    for (std::size_t k = 0; k < seq.size(); ++k) {
      const std::size_t app = seq[k];
      if (!has_prev[k]) {
        // First-ever occurrence: only the cold bound applies.
        EXPECT_LE(execs[k].cycles, analyzer->base(app).cold.wcet_cycles)
            << "trial " << trial << " task " << k;
        continue;
      }
      const cache::ContextWcet& cw = analyzer->analyze_context(app, masks[k]);
      EXPECT_LE(execs[k].cycles, cw.cycles)
          << "trial " << trial << " task " << k << " app " << app << " mask "
          << masks[k];
    }
  }
}

TEST(ContextBounds, SoundOnSampledStructuredPaths) {
  std::mt19937 rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t assoc = std::size_t{1} << (rng() % 3);
    const cache::CacheConfig c = cfg(32, assoc);
    const std::size_t n = 2 + rng() % 2;
    std::vector<cache::StructuredProgram> programs;
    for (std::size_t a = 0; a < n; ++a) {
      cache::RandomProgramOptions opts;
      opts.seed = static_cast<std::uint32_t>(rng());
      opts.max_depth = 2;
      opts.address_lines = 24;
      opts.max_loop_bound = 4;
      programs.push_back(cache::make_random_program("sp", opts));
    }
    const cache::ScheduleWcetAnalyzer analyzer(programs, c);

    // Concrete scenario per (app, mask): the app runs any sampled path,
    // the interferers run any sampled paths (in any order, possibly
    // repeatedly), the app runs again. That second run must stay within
    // the context bound whatever the paths were.
    for (std::size_t app = 0; app < n; ++app) {
      const std::uint64_t all = (std::uint64_t{1} << n) - 1;
      for (std::uint64_t mask = 0; mask <= all; ++mask) {
        const std::uint64_t canon = mask & ~(std::uint64_t{1} << app);
        const cache::ContextWcet& cw = analyzer.analyze_context(app, canon);
        for (int rep = 0; rep < 6; ++rep) {
          cache::CacheSim sim(c);
          const auto own1 = cache::sample_paths(
              programs[app].root, 1, static_cast<std::uint32_t>(rng()));
          sim.run_trace(own1[0]);
          for (std::size_t b = 0; b < n; ++b) {
            if (((canon >> b) & 1u) == 0) continue;
            const int runs = 1 + static_cast<int>(rng() % 2);
            for (int r = 0; r < runs; ++r) {
              const auto ip = cache::sample_paths(
                  programs[b].root, 1, static_cast<std::uint32_t>(rng()));
              sim.run_trace(ip[0]);
            }
          }
          const auto own2 = cache::sample_paths(
              programs[app].root, 1, static_cast<std::uint32_t>(rng()));
          const std::uint64_t cycles = sim.run_trace(own2[0]);
          EXPECT_LE(cycles, cw.cycles)
              << "trial " << trial << " app " << app << " mask " << canon;
        }
      }
    }
  }
}

TEST(ContextBounds, SteadyScheduleReplayWithinPerTaskBounds) {
  // The cyclic steady-state exec[] bounds of a context-expanded pattern
  // must cover a concrete multi-period replay of the same schedule.
  std::mt19937 rng(57);
  for (int trial = 0; trial < 8; ++trial) {
    const cache::CacheConfig c = cfg(64, std::size_t{1} << (rng() % 3));
    const std::size_t n = 2 + rng() % 2;
    std::vector<cache::Program> programs;
    for (std::size_t a = 0; a < n; ++a) {
      programs.push_back(random_trace(rng, "p", a * 23, 16 + rng() % 40,
                                      60 + rng() % 100));
    }
    const auto analyzer = cache::ScheduleWcetAnalyzer::from_traces(programs, c);
    std::vector<std::size_t> period_seq;
    for (std::size_t a = 0; a < n; ++a) period_seq.push_back(a);
    for (int k = 0; k < 8; ++k) period_seq.push_back(rng() % n);
    std::shuffle(period_seq.begin(), period_seq.end(), rng);

    const auto masks = compute_context_masks(period_seq, n);
    const std::size_t periods = 3;
    std::vector<std::size_t> full;
    for (std::size_t p = 0; p < periods; ++p) {
      full.insert(full.end(), period_seq.begin(), period_seq.end());
    }
    const auto execs = cache::simulate_task_sequence(programs, full, c);
    // Skip period 0 (cold start transient); the bounds model steady state.
    for (std::size_t k = period_seq.size(); k < full.size(); ++k) {
      const std::size_t kp = k % period_seq.size();
      const cache::ContextWcet& cw =
          analyzer->analyze_context(full[k], masks[kp]);
      EXPECT_LE(execs[k].cycles, cw.cycles)
          << "trial " << trial << " task " << k;
    }
  }
}

// ------------------------------------------------- sched-layer plumbing

TEST(ContextMasks, CyclicSteadyStateMasks) {
  // Sequence A B A C: A@0 sees {C} over the wrap, B sees {A, C}, A@2 sees
  // {B}, C sees {A, B}.
  const auto masks = compute_context_masks({0, 1, 0, 2}, 3);
  EXPECT_EQ(masks, (std::vector<std::uint64_t>{4, 5, 2, 3}));
  // Warm tasks (same app directly before, cyclically) get mask 0.
  const auto warm = compute_context_masks({0, 0, 1}, 2);
  EXPECT_EQ(warm[1], 0u);
  EXPECT_EQ(warm[0], 2u);  // A's burst reopens after B
  EXPECT_EQ(warm[2], 1u);
  // Single app: everything warm.
  const auto solo = compute_context_masks({0, 0}, 1);
  EXPECT_EQ(solo, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_THROW(compute_context_masks({0}, 65), std::invalid_argument);
}

TEST(DeriveTiming, ColdLookupMatchesBinaryBitForBit) {
  // A context table with no entries falls back to the cold bound for every
  // non-warm task: the context overload must then reproduce the binary
  // derivation exactly (same code path, same bits).
  const std::vector<AppWcet> wcets{{1.0e-3, 0.4e-3}, {2.0e-3, 0.7e-3},
                                   {1.5e-3, 1.5e-3}};
  ContextWcetTable table;
  table.base = wcets;
  table.contexts.resize(3);
  const std::vector<std::size_t> seq{0, 1, 0, 2, 1, 1};
  const ScheduleTiming binary = derive_timing(wcets, seq, 3);
  const ScheduleTiming ctx = derive_timing(wcets, table, seq, 3);
  EXPECT_TRUE(timing_identical(binary, ctx));

  const TimingPattern p =
      catsched::sched::expand_timing(wcets, table, seq, 3);
  EXPECT_TRUE(timing_identical(p.timing, binary));
  EXPECT_EQ(p.masks.size(), seq.size());
}

TEST(DeriveTiming, ContextBoundsShortenPeriods) {
  const std::vector<AppWcet> wcets{{1.0e-3, 0.4e-3}, {2.0e-3, 0.7e-3}};
  ContextWcetTable table;
  table.base = wcets;
  table.contexts.resize(2);
  table.contexts[0][std::uint64_t{2}] = 0.6e-3;  // A after B: mid-range
  table.contexts[1][std::uint64_t{1}] = 1.1e-3;  // B after A: mid-range
  const std::vector<std::size_t> seq{0, 1};
  const ScheduleTiming binary = derive_timing(wcets, seq, 2);
  const ScheduleTiming ctx = derive_timing(wcets, table, seq, 2);
  EXPECT_LT(ctx.period, binary.period);
  EXPECT_TRUE(same_bits(ctx.period, 0.6e-3 + 1.1e-3));
  // Warm flags unchanged: context tasks are still burst-opening.
  EXPECT_FALSE(ctx.apps[0].intervals[0].warm);
}

TEST(DeriveTiming, RejectsOutOfRangeContextValues) {
  const std::vector<AppWcet> wcets{{1.0e-3, 0.4e-3}, {2.0e-3, 0.7e-3}};
  ContextWcetTable bad;
  bad.base = wcets;
  bad.contexts.resize(2);
  bad.contexts[0][std::uint64_t{2}] = 1.2e-3;  // above cold: unsound
  EXPECT_THROW(derive_timing(wcets, bad, {0, 1}, 2), std::invalid_argument);
  bad.contexts[0][std::uint64_t{2}] = 0.1e-3;  // below warm: breaks ordering
  EXPECT_THROW(derive_timing(wcets, bad, {0, 1}, 2), std::invalid_argument);
}

// --------------------------------------------- analyzer-level machinery

TEST(Analyzer, TableAndLookupAgreeAndFallBackCold) {
  std::mt19937 rng(3);
  const cache::CacheConfig c = cfg(64, 2);
  std::vector<cache::Program> programs;
  for (std::size_t a = 0; a < 3; ++a) {
    programs.push_back(random_trace(rng, "p", a * 29, 40, 120));
  }
  const auto analyzer = cache::ScheduleWcetAnalyzer::from_traces(programs, c);
  const ContextWcetTable table = analyzer->full_table();
  ASSERT_EQ(table.base.size(), 3u);
  for (std::size_t app = 0; app < 3; ++app) {
    EXPECT_TRUE(same_bits(table.base[app].cold_seconds,
                          analyzer->app_wcets()[app].cold_seconds));
    for (const auto& [mask, seconds] : table.contexts[app]) {
      EXPECT_TRUE(same_bits(seconds, analyzer->context_wcet_seconds(app, mask)))
          << "app " << app << " mask " << mask;
    }
    // Unknown masks fall back to the (always sound) cold bound.
    ContextWcetTable empty;
    empty.base = table.base;
    EXPECT_TRUE(same_bits(empty.context_wcet_seconds(app, 1u + (app == 0)),
                          table.base[app].cold_seconds));
    EXPECT_TRUE(same_bits(empty.context_wcet_seconds(app, 0),
                          table.base[app].warm_seconds));
  }
}

TEST(Analyzer, MemoHitDeterminismAcrossThreads) {
  std::mt19937 rng(101);
  const cache::CacheConfig c = cfg(64, 2);
  std::vector<cache::Program> programs;
  for (std::size_t a = 0; a < 3; ++a) {
    programs.push_back(random_trace(rng, "p", a * 19, 40, 150));
  }
  // Serial reference values.
  const auto ref = cache::ScheduleWcetAnalyzer::from_traces(programs, c);
  const ContextWcetTable ref_table = ref->full_table();

  for (const int threads : {1, 2, 4}) {
    const auto analyzer =
        cache::ScheduleWcetAnalyzer::from_traces(programs, c);
    // Every thread hammers every (app, mask) pair in its own order.
    std::vector<std::thread> workers;
    std::vector<int> mismatches(static_cast<std::size_t>(threads), 0);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937 trng(static_cast<std::uint32_t>(7 * t + 1));
        std::vector<std::pair<std::size_t, std::uint64_t>> pairs;
        for (std::size_t app = 0; app < 3; ++app) {
          for (std::uint64_t mask = 0; mask < 8; ++mask) {
            if ((mask >> app) & 1u) continue;
            pairs.emplace_back(app, mask);
            pairs.emplace_back(app, mask);  // guaranteed repeat requests
          }
        }
        std::shuffle(pairs.begin(), pairs.end(), trng);
        for (const auto& [app, mask] : pairs) {
          const double v = analyzer->context_wcet_seconds(app, mask);
          const double expect =
              ref_table.context_wcet_seconds(app, mask);
          if (!same_bits(v, expect)) ++mismatches[static_cast<std::size_t>(t)];
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
          << threads << " threads, worker " << t;
    }
    // Compute-once: every pair analyzed exactly once however many threads
    // raced on it; the repeats are pure memo hits.
    const auto stats = analyzer->stats();
    EXPECT_EQ(stats.context_analyses, 12u) << threads << " threads";
    EXPECT_EQ(stats.context_requests,
              static_cast<std::uint64_t>(threads) * 24u)
        << threads << " threads";
  }
}

/// Three branchy structured apps on 8 sets x 2 ways whose arm lines never
/// enter the must state: first-miss genuinely fires. Each app keeps its
/// own lines in distinct sets (so persistence survives within a run) while
/// apps 0 and 2 collide set-wise (so interference masks matter).
std::vector<cache::StructuredProgram> branchy_fm_programs() {
  std::vector<cache::StructuredProgram> programs;
  for (std::uint64_t a = 0; a < 3; ++a) {
    const std::uint64_t b = 4 * a;
    cache::StructuredProgram p;
    p.name = "fm-app";
    p.root = cache::Stmt::loop(
        cache::Stmt::seq(
            {cache::Stmt::branch(cache::Stmt::block({b}),
                                 cache::Stmt::block({b + 1})),
             cache::Stmt::block({b + 2, b + 3})}),
        4);
    programs.push_back(std::move(p));
  }
  return programs;
}

TEST(Analyzer, FirstMissTightensEveryContextAndPreservesOrdering) {
  const cache::CacheConfig c = cfg(16, 2);
  const auto programs = branchy_fm_programs();
  const cache::ScheduleWcetAnalyzer on(programs, c, cache::FirstMiss::on);
  const cache::ScheduleWcetAnalyzer off(programs, c, cache::FirstMiss::off);
  for (std::size_t app = 0; app < 3; ++app) {
    // First-miss really fires and strictly tightens the base bounds.
    EXPECT_GT(on.base(app).cold.first_miss, 0u);
    EXPECT_LT(on.base(app).cold.wcet_cycles,
              off.base(app).cold.wcet_cycles);
    for (std::uint64_t mask = 0; mask < 8; ++mask) {
      const auto& ctx_on = on.analyze_context(app, mask);
      const auto& ctx_off = off.analyze_context(app, mask);
      // FM never loosens a context, and the AM-only column is mode-free.
      EXPECT_LE(ctx_on.cycles, ctx_off.cycles) << app << "/" << mask;
      EXPECT_EQ(ctx_on.analysis.am_only_cycles,
                ctx_off.analysis.am_only_cycles)
          << app << "/" << mask;
      // warm <= context <= cold holds WITHOUT the defensive clamp in both
      // modes (run-local persistence keeps the derivation monotone).
      EXPECT_TRUE(ctx_on.naturally_ordered) << app << "/" << mask;
      EXPECT_TRUE(ctx_off.naturally_ordered) << app << "/" << mask;
      EXPECT_LE(on.base(app).warm.wcet_cycles, ctx_on.cycles);
      EXPECT_LE(ctx_on.cycles, on.base(app).cold.wcet_cycles);
    }
  }
}

TEST(Analyzer, FirstMissContextsBitIdenticalAcrossThreadCounts) {
  const cache::CacheConfig c = cfg(16, 2);
  const auto programs = branchy_fm_programs();
  // Serial reference values, FM on (the default mode the system ships).
  const cache::ScheduleWcetAnalyzer ref(programs, c);
  const ContextWcetTable ref_table = ref.full_table();

  for (const int threads : {1, 2, 4}) {
    const cache::ScheduleWcetAnalyzer analyzer(programs, c);
    std::vector<std::thread> workers;
    std::vector<int> mismatches(static_cast<std::size_t>(threads), 0);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::mt19937 trng(static_cast<std::uint32_t>(13 * t + 5));
        std::vector<std::pair<std::size_t, std::uint64_t>> pairs;
        for (std::size_t app = 0; app < 3; ++app) {
          for (std::uint64_t mask = 0; mask < 8; ++mask) {
            if ((mask >> app) & 1u) continue;
            pairs.emplace_back(app, mask);
            pairs.emplace_back(app, mask);
          }
        }
        std::shuffle(pairs.begin(), pairs.end(), trng);
        for (const auto& [app, mask] : pairs) {
          const double v = analyzer.context_wcet_seconds(app, mask);
          const double expect = ref_table.context_wcet_seconds(app, mask);
          if (!same_bits(v, expect)) ++mismatches[static_cast<std::size_t>(t)];
        }
      });
    }
    for (std::thread& w : workers) w.join();
    for (int t = 0; t < threads; ++t) {
      EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
          << threads << " threads, worker " << t;
    }
    const auto stats = analyzer.stats();
    EXPECT_EQ(stats.context_analyses, 12u) << threads << " threads";
  }
}

// ------------------------------------------- evaluator and search modes

/// Two apps with PARTIALLY overlapping footprints on the paper's
/// direct-mapped cache: sets 0..59 hold app A's singletons, sets 40..99
/// app B's, so 40 singleton sets of each survive the other's interference
/// — the context bound lands strictly between warm and cold. (The
/// calibrated-layout generator cannot express this: it pins every program
/// to set 0, which is exactly the paper's everything-evicts regime.)
SystemModel partial_overlap_system() {
  SystemModel sys;
  sys.cache_config = catsched::core::date18_cache_config();
  auto make_app = [&](const char* name, std::uint64_t first_set, double w0,
                      double weight) {
    Application a;
    a.name = name;
    a.program.name = name;
    // 60 singleton lines, one per set, each immediately re-fetched once:
    // cold = 60 misses + 60 hits, warm = 120 hits, and a context loses
    // exactly the overlapped singletons.
    for (std::uint64_t s = first_set; s < first_set + 60; ++s) {
      a.program.trace.push_back(s);
      a.program.trace.push_back(s);
    }
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    return a;
  };
  sys.apps = {make_app("A", 0, 110.0, 0.6), make_app("B", 40, 140.0, 0.4)};
  return sys;
}

control::DesignOptions fast_options() {
  control::DesignOptions o = catsched::core::date18_design_options();
  o.pso.particles = 12;
  o.pso.iterations = 20;
  o.pso.stall_iterations = 8;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

TEST(SystemModel, ContextTableSitsBetweenWarmAndColdPairs) {
  const SystemModel sys = partial_overlap_system();
  const std::vector<AppWcet> sim = sys.analyze_wcets();
  const ContextWcetTable table = sys.analyze_context_wcets();
  ASSERT_EQ(table.base.size(), sim.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    // Static cold/warm base agrees with the simulator-derived pair.
    EXPECT_TRUE(same_bits(table.base[i].cold_seconds, sim[i].cold_seconds));
    EXPECT_TRUE(same_bits(table.base[i].warm_seconds, sim[i].warm_seconds));
  }
  // The partial overlap makes the cross-context bound land STRICTLY
  // between warm and cold (20 singleton sets survive the other app).
  const double a_vs_b = table.context_wcet_seconds(0, 2);
  EXPECT_GT(a_vs_b, table.base[0].warm_seconds);
  EXPECT_LT(a_vs_b, table.base[0].cold_seconds);
}

TEST(Evaluator, ContextModeShortensPeriodsAndKeepsBinaryModeUntouched) {
  const SystemModel sys = partial_overlap_system();
  Evaluator binary(sys, fast_options());
  Evaluator ctx(sys, fast_options(), nullptr,
                EvaluatorOptions{.context_wcets = true});
  EXPECT_EQ(binary.context_analyzer(), nullptr);
  EXPECT_FALSE(binary.context_wcets());
  EXPECT_TRUE(ctx.context_wcets());
  ASSERT_NE(ctx.context_analyzer(), nullptr);
  for (std::size_t i = 0; i < sys.apps.size(); ++i) {
    EXPECT_TRUE(same_bits(binary.wcets()[i].cold_seconds,
                          ctx.wcets()[i].cold_seconds));
    EXPECT_TRUE(same_bits(binary.wcets()[i].warm_seconds,
                          ctx.wcets()[i].warm_seconds));
  }

  // Alternating schedule: every task burst-opening. Context bounds strictly
  // shorten the period, which is what opens new schedule regions.
  const InterleavedSchedule alt({{0, 1}, {1, 1}, {0, 1}, {1, 1}}, 2);
  const ScheduleEvaluation eb = binary.evaluate(alt);
  const ScheduleEvaluation ec = ctx.evaluate(alt);
  EXPECT_LT(ec.timing.period, eb.timing.period);
}

TEST(Evaluator, ContextNeighborPathBitIdenticalToFromScratch) {
  Evaluator ev(partial_overlap_system(), fast_options(), nullptr,
               EvaluatorOptions{.context_wcets = true});
  const InterleavedSchedule base({{0, 2}, {1, 2}}, 2);
  const std::string base_key = base.to_string();
  const ScheduleEvaluation& base_eval = ev.evaluate_cached(base, base_key);
  const TimingPattern& pattern = ev.timing_pattern(base, base_key);
  EXPECT_EQ(pattern.masks.size(), pattern.seq.size());

  InterleavedSearchOptions opts;
  opts.max_segments = 4;
  opts.max_burst = 4;
  int checked = 0;
  for (const auto& nb : interleaved_neighbor_moves(base, opts)) {
    if (!nb.move) continue;
    ++checked;
    std::vector<bool> unchanged;
    ScheduleTiming timing =
        ev.derive_neighbor_timing(pattern, *nb.move, &unchanged);
    const ScheduleEvaluation scratch = ev.evaluate(nb.schedule);
    ASSERT_TRUE(timing_identical(timing, scratch.timing))
        << nb.schedule.to_string();
    for (std::size_t a = 0; a < unchanged.size(); ++a) {
      ASSERT_EQ(unchanged[a], timing.apps[a].intervals ==
                                  pattern.timing.apps[a].intervals);
    }
    const ScheduleEvaluation via_delta =
        ev.evaluate_neighbor(pattern, base_eval, *nb.move);
    ASSERT_TRUE(timing_identical(via_delta.timing, scratch.timing));
    ASSERT_TRUE(same_bits(via_delta.pall, scratch.pall))
        << nb.schedule.to_string();
    ASSERT_EQ(via_delta.feasible(), scratch.feasible());
  }
  EXPECT_GT(checked, 0);
}

TEST(InterleavedSearch, SerialAndParallelBitIdenticalWithContexts) {
  const SystemModel sys = partial_overlap_system();
  InterleavedSearchOptions opts;
  opts.max_segments = 4;
  opts.max_burst = 3;
  opts.max_steps = 2;
  const InterleavedSchedule start({{0, 1}, {1, 1}}, 2);

  Evaluator serial_ev(sys, fast_options(), nullptr,
                      EvaluatorOptions{.context_wcets = true});
  const auto serial = interleaved_search(serial_ev, start, opts);

  for (const std::size_t threads : {2u, 4u}) {
    catsched::core::ThreadPool pool(threads);
    Evaluator par_ev(sys, fast_options(), &pool,
                     EvaluatorOptions{.context_wcets = true});
    const auto par = interleaved_search(par_ev, start, opts, &pool);
    EXPECT_EQ(serial.found, par.found) << threads << " threads";
    EXPECT_EQ(serial.best.to_string(), par.best.to_string())
        << threads << " threads";
    EXPECT_TRUE(
        same_bits(serial.best_evaluation.pall, par.best_evaluation.pall))
        << threads << " threads";
    EXPECT_EQ(serial.path, par.path) << threads << " threads";
    EXPECT_EQ(serial.evaluations, par.evaluations) << threads << " threads";
  }
}

TEST(Evaluator, CaseStudyContextModeMatchesPaperBaseAndStaysOrdered) {
  // The paper's case study is built so every app evicts every other app's
  // singletons: all cross contexts collapse to the cold bound — the binary
  // model is exactly right there, and context mode must reproduce its
  // cold/warm pairs bit-for-bit.
  const SystemModel sys = catsched::core::date18_case_study();
  const std::vector<AppWcet> sim = sys.analyze_wcets();
  const auto analyzer = sys.make_context_analyzer();
  const auto pairs = analyzer->app_wcets();
  for (std::size_t i = 0; i < sim.size(); ++i) {
    EXPECT_TRUE(same_bits(pairs[i].cold_seconds, sim[i].cold_seconds));
    EXPECT_TRUE(same_bits(pairs[i].warm_seconds, sim[i].warm_seconds));
    for (std::uint64_t mask = 1; mask < 8; ++mask) {
      if ((mask >> i) & 1u) continue;
      const cache::ContextWcet& cw = analyzer->analyze_context(i, mask);
      EXPECT_TRUE(cw.naturally_ordered);
      EXPECT_GE(cw.seconds, pairs[i].warm_seconds);
      EXPECT_LE(cw.seconds, pairs[i].cold_seconds);
    }
  }
}

TEST(Analyzer, CaseStudyCrossContextsCollapseToColdExactly) {
  // Promoted from bench_schedule_wcet's sanity assert: on the paper's case
  // study, EVERY nonzero interference context equals the cold bound in
  // exact cycles — each app's singleton sets are fully conflicted by each
  // other app, so aging by any interferer evicts everything reusable. Not
  // just ordered within [warm, cold] (the test above): exact equality, per
  // app and per canonical mask.
  const SystemModel sys = catsched::core::date18_case_study();
  const auto analyzer = sys.make_context_analyzer();
  const std::size_t n = sys.apps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t cold_cycles = analyzer->base(i).cold.wcet_cycles;
    for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << n); ++mask) {
      if ((mask >> i) & 1u) continue;
      EXPECT_EQ(analyzer->analyze_context(i, mask).cycles, cold_cycles)
          << "app " << i << " mask 0x" << std::hex << mask;
    }
  }
}

}  // namespace
