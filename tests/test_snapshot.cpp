// Pins the snapshot format (core/snapshot): scalar round-trips are
// bit-exact, framing survives a write/read cycle, every rejection path
// raises the right typed SnapshotErrc (bad magic / version / kind,
// truncation, checksum), the crash-consistent file rotation keeps a .prev
// image, and load_snapshot_file falls back to it when the primary is
// damaged — the foundation of the kill-and-resume determinism guarantee.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/snapshot.hpp"

namespace {

using catsched::core::FaultPlan;
using catsched::core::SnapshotErrc;
using catsched::core::SnapshotError;
using catsched::core::SnapshotReader;
using catsched::core::SnapshotWriter;

/// Unique temp path per test; removed (with .tmp/.prev siblings) on exit.
class TempSnapshotPath {
 public:
  explicit TempSnapshotPath(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("catsched_snap_" + tag + ".bin"))
                  .string()) {
    cleanup();
  }
  ~TempSnapshotPath() { cleanup(); }
  const std::string& str() const { return path_; }

 private:
  void cleanup() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
    std::filesystem::remove(path_ + ".prev", ec);
  }
  std::string path_;
};

SnapshotErrc code_of(const std::vector<std::uint8_t>& file_bytes,
                     std::uint32_t expected_kind) {
  try {
    catsched::core::unframe_snapshot(file_bytes, expected_kind);
  } catch (const SnapshotError& e) {
    return e.code();
  }
  ADD_FAILURE() << "unframe_snapshot accepted damaged bytes";
  return SnapshotErrc::io_error;
}

TEST(SnapshotCodec, ScalarsRoundTripBitExact) {
  SnapshotWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  w.put_f64(0.1);
  w.put_f64(-0.0);
  w.put_f64(denorm);
  w.put_f64(nan);
  w.put_string("schedule (2, 3)");
  w.put_int_vector({5, -3, 0, 1 << 20});

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(0.1));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(denorm));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(nan));
  EXPECT_EQ(r.get_string(), "schedule (2, 3)");
  EXPECT_EQ(r.get_int_vector(), (std::vector<int>{5, -3, 0, 1 << 20}));
  EXPECT_TRUE(r.at_end());
}

TEST(SnapshotCodec, ReaderUnderrunThrowsTruncated) {
  SnapshotWriter w;
  w.put_u32(7);
  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 7u);
  try {
    r.get_u64();
    FAIL() << "read past the end succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrc::truncated);
  }
}

TEST(SnapshotCodec, HostileVectorCountRejectedNotAllocated) {
  // A forged u64 count must be caught by the remaining-bytes bound, not
  // turned into a giant allocation or a wrapped size computation.
  SnapshotWriter w;
  w.put_u64(std::numeric_limits<std::uint64_t>::max());
  SnapshotReader r(w.bytes());
  try {
    r.get_int_vector();
    FAIL() << "hostile count accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrc::truncated);
  }
}

TEST(SnapshotFraming, RoundTripPreservesPayloadAndKind) {
  SnapshotWriter w;
  w.put_string("payload");
  w.put_f64(0.25);
  const std::vector<std::uint8_t> payload = w.bytes();
  const auto framed = catsched::core::frame_snapshot(2, payload);
  std::uint32_t kind = 0;
  const auto back = catsched::core::unframe_snapshot(framed, 0, &kind);
  EXPECT_EQ(kind, 2u);
  EXPECT_EQ(back, payload);
}

TEST(SnapshotFraming, RejectionsCarryTypedCodes) {
  SnapshotWriter w;
  w.put_u64(99);
  auto framed = catsched::core::frame_snapshot(1, w.bytes());

  auto bad_magic = framed;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(code_of(bad_magic, 1), SnapshotErrc::bad_magic);

  auto bad_version = framed;
  bad_version[4] ^= 0x01;
  EXPECT_EQ(code_of(bad_version, 1), SnapshotErrc::bad_version);

  // Kind mismatch: a valid interleaved snapshot fed to a resume expecting
  // an evaluation table must be refused, not misparsed.
  EXPECT_EQ(code_of(framed, 3), SnapshotErrc::bad_kind);

  auto truncated = framed;
  truncated.pop_back();
  EXPECT_EQ(code_of(truncated, 1), SnapshotErrc::truncated);

  auto flipped = framed;
  flipped[framed.size() - 9] ^= 0x01;  // last payload byte
  EXPECT_EQ(code_of(flipped, 1), SnapshotErrc::checksum_mismatch);

  const std::vector<std::uint8_t> tiny{'C', 'S', 'N', 'P'};
  EXPECT_EQ(code_of(tiny, 1), SnapshotErrc::truncated);
}

TEST(SnapshotFile, WriteReadRoundTrip) {
  TempSnapshotPath p("roundtrip");
  SnapshotWriter w;
  w.put_int_vector({2, 3});
  w.put_f64(0.7310585786300049);
  catsched::core::write_snapshot_file(p.str(), 1, w.bytes());
  ASSERT_TRUE(catsched::core::snapshot_exists(p.str()));
  const auto payload = catsched::core::read_snapshot_file(p.str(), 1);
  SnapshotReader r(payload);
  EXPECT_EQ(r.get_int_vector(), (std::vector<int>{2, 3}));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.get_f64()),
            std::bit_cast<std::uint64_t>(0.7310585786300049));
}

TEST(SnapshotFile, MissingFileIsIoErrorAndNotExists) {
  TempSnapshotPath p("missing");
  EXPECT_FALSE(catsched::core::snapshot_exists(p.str()));
  try {
    catsched::core::read_snapshot_file(p.str(), 1);
    FAIL() << "read of missing file succeeded";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrc::io_error);
  }
}

TEST(SnapshotFile, RotationKeepsPreviousImage) {
  TempSnapshotPath p("rotation");
  SnapshotWriter w1;
  w1.put_u64(1);
  catsched::core::write_snapshot_file(p.str(), 1, w1.bytes());
  EXPECT_FALSE(std::filesystem::exists(p.str() + ".prev"));

  SnapshotWriter w2;
  w2.put_u64(2);
  catsched::core::write_snapshot_file(p.str(), 1, w2.bytes());

  // Primary carries the new image, .prev the old one, no stray .tmp.
  const auto cur_payload = catsched::core::read_snapshot_file(p.str(), 1);
  SnapshotReader cur(cur_payload);
  EXPECT_EQ(cur.get_u64(), 2u);
  const auto prev_payload =
      catsched::core::read_snapshot_file(p.str() + ".prev", 1);
  SnapshotReader prev(prev_payload);
  EXPECT_EQ(prev.get_u64(), 1u);
  EXPECT_FALSE(std::filesystem::exists(p.str() + ".tmp"));
}

TEST(SnapshotFile, LoadFallsBackToPrevWhenPrimaryCorrupted) {
  TempSnapshotPath p("fallback");
  SnapshotWriter w1;
  w1.put_u64(10);
  catsched::core::write_snapshot_file(p.str(), 1, w1.bytes());

  // Second write with the corruption fault armed: the primary image is
  // damaged exactly as a torn write would leave it, .prev stays intact.
  FaultPlan fault;
  fault.corrupt_snapshot_at = 1;
  SnapshotWriter w2;
  w2.put_u64(20);
  catsched::core::write_snapshot_file(p.str(), 1, w2.bytes(), &fault);

  try {
    catsched::core::read_snapshot_file(p.str(), 1);
    FAIL() << "corrupted primary accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrc::checksum_mismatch);
  }

  bool used_fallback = false;
  const auto payload =
      catsched::core::load_snapshot_file(p.str(), 1, &used_fallback);
  EXPECT_TRUE(used_fallback);
  SnapshotReader r(payload);
  EXPECT_EQ(r.get_u64(), 10u);
}

TEST(SnapshotFile, LoadThrowsPrimaryErrorWhenBothDamaged) {
  TempSnapshotPath p("bothbad");
  SnapshotWriter w;
  w.put_u64(1);
  catsched::core::write_snapshot_file(p.str(), 1, w.bytes());
  catsched::core::write_snapshot_file(p.str(), 1, w.bytes());  // creates .prev

  // Truncate both images below the framing minimum.
  std::filesystem::resize_file(p.str(), 4);
  std::filesystem::resize_file(p.str() + ".prev", 4);
  bool used_fallback = true;
  try {
    catsched::core::load_snapshot_file(p.str(), 1, &used_fallback);
    FAIL() << "doubly-damaged checkpoint accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.code(), SnapshotErrc::truncated);
  }
}

TEST(SnapshotFile, TruncatedPrimaryFallsBackToPrev) {
  TempSnapshotPath p("truncfall");
  SnapshotWriter w1;
  w1.put_u64(7);
  catsched::core::write_snapshot_file(p.str(), 1, w1.bytes());
  SnapshotWriter w2;
  w2.put_u64(8);
  catsched::core::write_snapshot_file(p.str(), 1, w2.bytes());

  // Simulate a torn write: primary cut mid-payload.
  const auto size = std::filesystem::file_size(p.str());
  std::filesystem::resize_file(p.str(), size / 2);

  bool used_fallback = false;
  const auto payload =
      catsched::core::load_snapshot_file(p.str(), 1, &used_fallback);
  EXPECT_TRUE(used_fallback);
  SnapshotReader r(payload);
  EXPECT_EQ(r.get_u64(), 7u);
}

}  // namespace
