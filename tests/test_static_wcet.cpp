/// \file test_static_wcet.cpp
/// \brief Structured-program and static-WCET tests: tree construction, path
///        enumeration, timing-schema composition, loop first/steady
///        distinction, warm-entry reduction, and the global soundness
///        property (static bound >= simulated cycles on EVERY path) over
///        randomized programs and cache geometries.

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache_model.hpp"
#include "cache/static_wcet.hpp"
#include "cache/structure.hpp"
#include "cache/wcet.hpp"

namespace {

using catsched::cache::analyze_static_app_wcet;
using catsched::cache::analyze_static_wcet;
using catsched::cache::CacheConfig;
using catsched::cache::CacheSim;
using catsched::cache::enumerate_paths;
using catsched::cache::flatten_to_program;
using catsched::cache::make_random_program;
using catsched::cache::RandomProgramOptions;
using catsched::cache::StaticWcetResult;
using catsched::cache::Stmt;
using catsched::cache::StructuredProgram;

CacheConfig cfg(std::size_t lines, std::size_t assoc) {
  CacheConfig c;
  c.num_lines = lines;
  c.associativity = assoc;
  return c;
}

TEST(Stmt, FactoriesEnforceInvariants) {
  EXPECT_THROW(Stmt::loop(Stmt::block({1}), 0), std::invalid_argument);
  const Stmt s = Stmt::seq({Stmt::block({1, 2}), Stmt::block({3})});
  EXPECT_EQ(s.max_path_accesses(), 3u);
  const Stmt b = Stmt::branch(Stmt::block({1, 2, 3}), Stmt::block({4}));
  EXPECT_EQ(b.max_path_accesses(), 3u);  // max over arms
  const Stmt l = Stmt::loop(Stmt::block({1, 2}), 5);
  EXPECT_EQ(l.max_path_accesses(), 10u);
}

TEST(EnumeratePaths, CountsAndContents) {
  // if (c1) {1} else {2}; if (c2) {3} else {4} -> 4 paths.
  const Stmt root = Stmt::seq({Stmt::branch(Stmt::block({1}), Stmt::block({2})),
                               Stmt::branch(Stmt::block({3}),
                                            Stmt::block({4}))});
  auto paths = enumerate_paths(root);
  ASSERT_EQ(paths.size(), 4u);
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths[0], (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(paths[3], (std::vector<std::uint64_t>{2, 4}));
}

TEST(EnumeratePaths, LoopUnrollsBoundTimes) {
  const Stmt root = Stmt::loop(Stmt::block({7, 8}), 3);
  const auto paths = enumerate_paths(root);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::uint64_t>{7, 8, 7, 8, 7, 8}));
}

TEST(EnumeratePaths, ThrowsOnExplosion) {
  // 13 sequential branches -> 8192 paths > default 4096 cap.
  std::vector<Stmt> stmts;
  for (int i = 0; i < 13; ++i) {
    stmts.push_back(Stmt::branch(Stmt::block({1}), Stmt::block({2})));
  }
  EXPECT_THROW(enumerate_paths(Stmt::seq(std::move(stmts))),
               std::length_error);
}

TEST(FlattenToProgram, RejectsBranches) {
  StructuredProgram p;
  p.root = Stmt::branch(Stmt::block({1}), Stmt::block({2}));
  EXPECT_THROW(flatten_to_program(p), std::invalid_argument);
}

TEST(StaticWcet, StraightLineColdAllMisses) {
  StructuredProgram p;
  p.name = "straight";
  p.root = Stmt::block({0, 1, 2, 3});
  const CacheConfig c = cfg(8, 1);
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_miss, 4u);
  EXPECT_EQ(r.always_hit, 0u);
  EXPECT_EQ(r.wcet_cycles, 4u * c.miss_cycles);
}

TEST(StaticWcet, RepeatedLineIsAlwaysHit) {
  StructuredProgram p;
  p.root = Stmt::block({0, 0, 0});
  const CacheConfig c = cfg(8, 1);
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_miss, 1u);
  EXPECT_EQ(r.always_hit, 2u);
  EXPECT_EQ(r.wcet_cycles, c.miss_cycles + 2u * c.hit_cycles);
}

TEST(StaticWcet, BranchTakesCostlierArm) {
  // then: 3 distinct cold lines (3 misses); else: 1 line (1 miss).
  StructuredProgram p;
  p.root = Stmt::branch(Stmt::block({0, 1, 2}), Stmt::block({3}));
  const CacheConfig c = cfg(8, 1);
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.wcet_cycles, 3u * c.miss_cycles);
  // After the branch, neither arm's lines are guaranteed: a following
  // access to line 0 cannot be AH.
  StructuredProgram p2;
  p2.root = Stmt::seq({Stmt::branch(Stmt::block({0, 1, 2}), Stmt::block({3})),
                       Stmt::block({0})});
  const StaticWcetResult r2 = analyze_static_wcet(p2, c);
  EXPECT_EQ(r2.wcet_cycles, 3u * c.miss_cycles + c.miss_cycles);
}

TEST(StaticWcet, LoopFirstIterationMissesRestHit) {
  // Loop body of 2 lines fitting the cache: iteration 1 misses both,
  // iterations 2..5 hit both (the classic first-miss pattern).
  StructuredProgram p;
  p.root = Stmt::loop(Stmt::block({0, 1}), 5);
  const CacheConfig c = cfg(8, 1);
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_miss, 2u);
  EXPECT_EQ(r.always_hit, 8u);
  EXPECT_EQ(r.wcet_cycles, 2u * c.miss_cycles + 8u * c.hit_cycles);
}

TEST(StaticWcet, ConflictingLoopLinesNeverBecomeHits) {
  // Two lines in the same direct-mapped set evict each other every
  // iteration: all accesses are misses, in every iteration.
  StructuredProgram p;
  p.root = Stmt::loop(Stmt::block({0, 8}), 4);  // 8 sets: both map to set 0
  const CacheConfig c = cfg(8, 1);
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_hit, 0u);
  // Persistence must not rescue self-conflicting lines either: each access
  // evicts the other line, so neither is ever first-miss.
  EXPECT_EQ(r.first_miss, 0u);
  EXPECT_EQ(r.wcet_cycles, 8u * c.miss_cycles);
}

TEST(StaticWcet, AssociativityRescuesConflictingLines) {
  // The same two conflicting lines in a 2-way cache coexist: steady
  // iterations hit.
  StructuredProgram p;
  p.root = Stmt::loop(Stmt::block({0, 8}), 4);
  const CacheConfig c = cfg(8, 2);  // 4 sets x 2 ways
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_miss, 2u);
  EXPECT_EQ(r.always_hit, 6u);
}

TEST(StaticWcet, WarmEntryCertifiesReduction) {
  // A small straight-line program re-executed back-to-back: the warm bound
  // must certify every fitting line as AH.
  StructuredProgram p;
  p.root = Stmt::block({0, 1, 2, 3});
  const CacheConfig c = cfg(8, 1);
  const auto app = analyze_static_app_wcet(p, c);
  EXPECT_EQ(app.cold.always_miss, 4u);
  EXPECT_EQ(app.warm.always_hit, 4u);
  EXPECT_EQ(app.reduction_cycles(), 4u * (c.miss_cycles - c.hit_cycles));
}

TEST(StaticWcet, WarmReductionMatchesSimulatorOnBranchFreePrograms) {
  // For branch-free programs the static warm analysis and the concrete
  // warm simulation must agree exactly (single path, exact abstraction of
  // one concrete state).
  for (std::uint32_t seed : {1u, 2u, 3u, 4u, 5u}) {
    RandomProgramOptions opts;
    opts.seed = seed;
    opts.branch_probability = 0.0;  // loops only
    opts.address_lines = 24;
    const auto prog = make_random_program("bf", opts);
    const CacheConfig c = cfg(16, 2);
    const auto stat = analyze_static_app_wcet(prog, c);
    const auto sim = catsched::cache::analyze_wcet(flatten_to_program(prog),
                                                   c, 4);
    EXPECT_GE(stat.cold.wcet_cycles, sim.cold_cycles) << "seed " << seed;
    EXPECT_GE(stat.warm.wcet_cycles, sim.warm_cycles) << "seed " << seed;
  }
}

// --------------------------------------------------------------------------
// First-miss (persistence) pins: the branchy-loop shapes the must/may
// domains alone cannot tighten. The classification and both cycle columns
// (FM composition and AM-only) are pinned exactly.

TEST(FirstMiss, BranchyLoopChargesEachArmLineOneMissThenHits) {
  // loop(4) { if (c) {a=0} else {b=1}; {2, 3} } on 8 sets x 2 ways: no two
  // lines share a set, yet neither arm line ever enters the must state
  // (each is absent from the other arm's path). AM-only charges the arm
  // access a miss in EVERY iteration; persistence proves each arm line
  // misses at most once over the run, so iterations 2..4 charge a hit plus
  // a single one-time penalty.
  StructuredProgram p;
  p.name = "branchy";
  p.root = Stmt::loop(
      Stmt::seq({Stmt::branch(Stmt::block({0}), Stmt::block({1})),
                 Stmt::block({2, 3})}),
      4);
  const CacheConfig c = cfg(16, 2);  // 8 sets x 2 ways
  const StaticWcetResult r = analyze_static_wcet(p, c);
  EXPECT_EQ(r.always_miss, 3u);   // iteration 1: arm + both shared lines
  EXPECT_EQ(r.always_hit, 6u);    // shared lines, iterations 2..4
  EXPECT_EQ(r.first_miss, 3u);    // the arm access, iterations 2..4
  EXPECT_EQ(r.not_classified, 0u);
  EXPECT_EQ(r.fm_penalty_cycles, c.miss_cycles - c.hit_cycles);
  EXPECT_EQ(r.am_only_cycles, 6u * c.miss_cycles + 6u * c.hit_cycles);
  EXPECT_EQ(r.wcet_cycles, 4u * c.miss_cycles + 8u * c.hit_cycles);
  EXPECT_LT(r.wcet_cycles, r.am_only_cycles);

  // Differential: the FM bound is not just sound but EXACT here — the
  // worst concrete path (alternating arms: a and b each miss once) costs
  // exactly the bound.
  std::uint64_t worst_sim = 0;
  for (const auto& path : enumerate_paths(p.root, 4096)) {
    CacheSim sim(c);
    worst_sim = std::max(worst_sim, sim.run_trace(path));
  }
  EXPECT_EQ(r.wcet_cycles, worst_sim);
}

TEST(FirstMiss, NeverLoosensAndOffModeReproducesAmOnly) {
  using catsched::cache::FirstMiss;
  using catsched::cache::StaticAnalysisMemo;
  for (const std::uint32_t seed : {201u, 202u, 203u, 204u}) {
    RandomProgramOptions opts;
    opts.seed = seed;
    opts.max_depth = 3;
    opts.branch_probability = 0.5;
    opts.max_loop_bound = 4;
    opts.address_lines = 24;
    const auto prog = make_random_program("fm", opts);
    for (const CacheConfig& c : {cfg(8, 1), cfg(16, 2), cfg(32, 4)}) {
      const StaticWcetResult on = analyze_static_wcet(prog, c);
      const StaticWcetResult off = analyze_static_wcet(
          prog, c, std::nullopt, nullptr, FirstMiss::off);
      // FM can only tighten, and off-mode is the exact AM-only bound.
      EXPECT_LE(on.wcet_cycles, on.am_only_cycles);
      EXPECT_EQ(off.wcet_cycles, off.am_only_cycles);
      EXPECT_EQ(off.am_only_cycles, on.am_only_cycles);
      EXPECT_EQ(off.first_miss, 0u);
      EXPECT_EQ(off.fm_penalty_cycles, 0u);
      // Off-mode reports would-be FM points as NC; AH/AM are mode-free.
      EXPECT_EQ(off.not_classified, on.not_classified + on.first_miss);
      EXPECT_EQ(off.always_hit, on.always_hit);
      EXPECT_EQ(off.always_miss, on.always_miss);
      EXPECT_EQ(off.exit_state, on.exit_state);

      // Memoized analyses are bit-identical to memo-less ones, cold run
      // and pure-hit rerun alike.
      StaticAnalysisMemo memo;
      const StaticWcetResult first =
          analyze_static_wcet(prog, c, std::nullopt, &memo);
      const StaticWcetResult rerun =
          analyze_static_wcet(prog, c, std::nullopt, &memo);
      for (const StaticWcetResult* m : {&first, &rerun}) {
        EXPECT_EQ(m->wcet_cycles, on.wcet_cycles);
        EXPECT_EQ(m->am_only_cycles, on.am_only_cycles);
        EXPECT_EQ(m->fm_penalty_cycles, on.fm_penalty_cycles);
        EXPECT_EQ(m->first_miss, on.first_miss);
        EXPECT_EQ(m->not_classified, on.not_classified);
        EXPECT_TRUE(m->exit_state == on.exit_state);
      }
    }
  }
}

TEST(FirstMiss, BranchFreeProgramsAreBitIdenticalInBothModes) {
  // On a single path the persistence age never undercuts the must age, so
  // first-miss cannot fire and FM-on reproduces the legacy AM-only result
  // bit for bit — the compatibility guarantee for trace-lifted programs.
  using catsched::cache::FirstMiss;
  for (const std::uint32_t seed : {31u, 32u, 33u}) {
    RandomProgramOptions opts;
    opts.seed = seed;
    opts.max_depth = 3;
    opts.branch_probability = 0.0;  // loops and blocks only: one path
    opts.max_loop_bound = 5;
    opts.address_lines = 20;
    const auto prog = make_random_program("single", opts);
    const CacheConfig c = cfg(16, 2);
    const StaticWcetResult on = analyze_static_wcet(prog, c);
    const StaticWcetResult off = analyze_static_wcet(
        prog, c, std::nullopt, nullptr, FirstMiss::off);
    EXPECT_EQ(on.first_miss, 0u);
    EXPECT_EQ(on.fm_penalty_cycles, 0u);
    EXPECT_EQ(on.wcet_cycles, off.wcet_cycles);
    EXPECT_EQ(on.wcet_cycles, on.am_only_cycles);
  }
}

struct SoundnessCase {
  std::uint32_t seed;
  std::size_t lines;
  std::size_t assoc;
};

class StaticWcetSoundnessSweep
    : public ::testing::TestWithParam<SoundnessCase> {};

/// THE soundness property: the static WCET bound dominates the simulated
/// cycle count of every concrete path of the program, from a cold cache.
TEST_P(StaticWcetSoundnessSweep, BoundDominatesEveryPath) {
  const auto pc = GetParam();
  RandomProgramOptions opts;
  opts.seed = pc.seed;
  opts.max_depth = 3;
  opts.branch_probability = 0.4;
  opts.max_loop_bound = 4;
  opts.address_lines = 2 * pc.lines;
  const auto prog = make_random_program("rand", opts);
  const CacheConfig c = cfg(pc.lines, pc.assoc);

  const StaticWcetResult bound = analyze_static_wcet(prog, c);
  std::vector<std::vector<std::uint64_t>> paths;
  try {
    paths = enumerate_paths(prog.root, 4096);  // exhaustive when feasible
  } catch (const std::length_error&) {
    paths = catsched::cache::sample_paths(prog.root, 4096, pc.seed);
  }
  std::uint64_t worst_sim = 0;
  for (const auto& path : paths) {
    CacheSim sim(c);
    worst_sim = std::max(worst_sim, sim.run_trace(path));
  }
  EXPECT_GE(bound.wcet_cycles, worst_sim)
      << "unsound bound on seed " << pc.seed << " (" << paths.size()
      << " paths)";
  // Sanity: the bound is not absurdly loose either (every access a miss).
  EXPECT_LE(bound.wcet_cycles,
            prog.root.max_path_accesses() * c.miss_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, StaticWcetSoundnessSweep,
    ::testing::Values(SoundnessCase{101, 8, 1}, SoundnessCase{102, 8, 2},
                      SoundnessCase{103, 16, 1}, SoundnessCase{104, 16, 4},
                      SoundnessCase{105, 32, 2}, SoundnessCase{106, 8, 0},
                      SoundnessCase{107, 16, 2}, SoundnessCase{108, 32, 8},
                      SoundnessCase{109, 8, 4}, SoundnessCase{110, 64, 4},
                      SoundnessCase{111, 16, 8}, SoundnessCase{112, 32, 1}));

class WarmSoundnessSweep : public ::testing::TestWithParam<std::uint32_t> {};

/// Warm-entry soundness: re-running any path right after any other path of
/// the same program costs no more than the static warm bound.
TEST_P(WarmSoundnessSweep, WarmBoundDominatesBackToBackPaths) {
  RandomProgramOptions opts;
  opts.seed = GetParam();
  opts.max_depth = 2;
  opts.branch_probability = 0.5;
  opts.max_loop_bound = 3;
  opts.address_lines = 20;
  const auto prog = make_random_program("warm", opts);
  const CacheConfig c = cfg(16, 2);

  const auto stat = analyze_static_app_wcet(prog, c);
  const auto paths = enumerate_paths(prog.root, 512);
  for (const auto& first : paths) {
    for (const auto& second : paths) {
      CacheSim sim(c);
      sim.run_trace(first);
      sim.reset_counters();
      const std::uint64_t warm_cycles = sim.run_trace(second);
      ASSERT_LE(warm_cycles, stat.warm.wcet_cycles)
          << "unsound warm bound, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmSoundnessSweep,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

TEST(RandomProgram, DeterministicForSeed) {
  RandomProgramOptions opts;
  opts.seed = 7;
  const auto a = make_random_program("a", opts);
  const auto b = make_random_program("b", opts);
  EXPECT_EQ(enumerate_paths(a.root, 4096), enumerate_paths(b.root, 4096));
}

}  // namespace
