/// \file test_svd.cpp
/// \brief SVD tests: reconstruction, orthonormality, known spectra, rank and
///        pseudo-inverse properties on random and structured matrices.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/svd.hpp"

namespace {

using catsched::linalg::Matrix;
using catsched::linalg::pinv;
using catsched::linalg::singular_values;
using catsched::linalg::svd;
using catsched::linalg::Svd;

Matrix random_matrix(std::mt19937& rng, std::size_t r, std::size_t c,
                     double scale = 1.0) {
  std::uniform_real_distribution<double> dist(-scale, scale);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = dist(rng);
  }
  return m;
}

Matrix reconstruct(const Svd& d) {
  Matrix s = Matrix::zero(d.sigma.size(), d.sigma.size());
  for (std::size_t i = 0; i < d.sigma.size(); ++i) s(i, i) = d.sigma[i];
  return d.u * s * d.v.transposed();
}

bool has_orthonormal_columns(const Matrix& m, double tol = 1e-9) {
  const Matrix g = m.transposed() * m;
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      const double want = (i == j) ? 1.0 : 0.0;
      if (std::abs(g(i, j) - want) > tol) return false;
    }
  }
  return true;
}

struct Shape {
  std::size_t rows;
  std::size_t cols;
};

class SvdShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(SvdShapeSweep, ReconstructsAndIsOrthonormal) {
  std::mt19937 rng(GetParam().rows * 31 + GetParam().cols);
  const Matrix a = random_matrix(rng, GetParam().rows, GetParam().cols, 2.0);
  const Svd d = svd(a);
  ASSERT_EQ(d.sigma.size(), std::min(a.rows(), a.cols()));
  EXPECT_TRUE(catsched::linalg::approx_equal(reconstruct(d), a, 1e-8));
  EXPECT_TRUE(has_orthonormal_columns(d.u));
  EXPECT_TRUE(has_orthonormal_columns(d.v));
  for (std::size_t i = 0; i + 1 < d.sigma.size(); ++i) {
    EXPECT_GE(d.sigma[i], d.sigma[i + 1]);  // sorted descending
  }
  for (double s : d.sigma) EXPECT_GE(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeSweep,
                         ::testing::Values(Shape{1, 1}, Shape{2, 2},
                                           Shape{3, 3}, Shape{5, 5},
                                           Shape{4, 2}, Shape{2, 4},
                                           Shape{7, 3}, Shape{3, 7},
                                           Shape{8, 8}, Shape{1, 6},
                                           Shape{6, 1}));

TEST(Svd, DiagonalMatrixSpectrumIsAbsoluteDiagonal) {
  const Matrix a = Matrix::diagonal({3.0, -5.0, 0.0, 1.0});
  const auto s = singular_values(a);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_NEAR(s[0], 5.0, 1e-12);
  EXPECT_NEAR(s[1], 3.0, 1e-12);
  EXPECT_NEAR(s[2], 1.0, 1e-12);
  EXPECT_NEAR(s[3], 0.0, 1e-12);
}

TEST(Svd, RankDetectsDeficiency) {
  // Rank-1 outer product.
  const Matrix u = Matrix::column({1.0, 2.0, 3.0});
  const Matrix a = u * u.transposed();
  EXPECT_EQ(svd(a).rank(), 1u);
  EXPECT_EQ(svd(Matrix::identity(3)).rank(), 3u);
  EXPECT_EQ(svd(Matrix::zero(3, 3)).rank(), 0u);
}

TEST(Svd, CondOfIdentityIsOneAndSingularIsInf) {
  EXPECT_DOUBLE_EQ(svd(Matrix::identity(4)).cond(), 1.0);
  const Matrix u = Matrix::column({1.0, 1.0});
  EXPECT_TRUE(std::isinf(svd(u * u.transposed()).cond()));
}

TEST(Svd, Norm2MatchesKnownValue) {
  // [[3,0],[4,0]] has sigma = {5, 0}.
  const Matrix a{{3.0, 0.0}, {4.0, 0.0}};
  EXPECT_NEAR(svd(a).norm2(), 5.0, 1e-12);
}

class PinvSweep : public ::testing::TestWithParam<int> {};

TEST_P(PinvSweep, SatisfiesMoorePenroseConditions) {
  std::mt19937 rng(200 + static_cast<unsigned>(GetParam()));
  const std::size_t r = 2 + static_cast<std::size_t>(GetParam()) % 4;
  const std::size_t c = 2 + static_cast<std::size_t>(GetParam() / 2) % 4;
  const Matrix a = random_matrix(rng, r, c);
  const Matrix p = pinv(a);
  ASSERT_EQ(p.rows(), c);
  ASSERT_EQ(p.cols(), r);
  EXPECT_TRUE(catsched::linalg::approx_equal(a * p * a, a, 1e-8));
  EXPECT_TRUE(catsched::linalg::approx_equal(p * a * p, p, 1e-8));
  EXPECT_TRUE(
      catsched::linalg::approx_equal((a * p).transposed(), a * p, 1e-8));
  EXPECT_TRUE(
      catsched::linalg::approx_equal((p * a).transposed(), p * a, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, PinvSweep, ::testing::Range(0, 10));

TEST(Pinv, InvertsSquareNonsingular) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Matrix p = pinv(a);
  EXPECT_TRUE(
      catsched::linalg::approx_equal(a * p, Matrix::identity(2), 1e-10));
}

TEST(Pinv, LeastSquaresSolutionOfTallSystem) {
  // Overdetermined consistent system: pinv must recover the exact solution.
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const Matrix x_true = Matrix::column({2.0, -1.0});
  const Matrix b = a * x_true;
  EXPECT_TRUE(catsched::linalg::approx_equal(pinv(a) * b, x_true, 1e-10));
}

}  // namespace
