/// \file test_testgen.cpp
/// \brief Workload generator + invariant-harness tests: the owned RNG's
///        pinned draw sequence (platform determinism), seed-reproduction
///        of generated systems (fingerprint identity across in-process
///        generations), generator validity and the footprint-overlap knob's
///        two limit regimes (disjoint -> contexts stay warm, coincident ->
///        the covered app collapses to cold), the invariant harness passing
///        on generated systems, and the injected-failure self-test: a
///        deliberately false invariant must fail deterministically and
///        shrink to a minimal system.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "cache/schedule_wcet.hpp"
#include "cache/wcet.hpp"
#include "testgen/generator.hpp"
#include "testgen/invariants.hpp"
#include "testgen/rng.hpp"
#include "testgen/shrink.hpp"

namespace {

using catsched::testgen::check_invariants;
using catsched::testgen::FailurePredicate;
using catsched::testgen::generate_system;
using catsched::testgen::GeneratedSystem;
using catsched::testgen::GeneratorConfig;
using catsched::testgen::InvariantOptions;
using catsched::testgen::InvariantReport;
using catsched::testgen::make_invariant_predicate;
using catsched::testgen::shrink_system;
using catsched::testgen::ShrinkResult;
using catsched::testgen::SplitMix64;
using catsched::testgen::system_fingerprint;
namespace cache = catsched::cache;

TEST(Rng, SplitMix64KnownAnswerVectors) {
  // Reference sequence of splitmix64 (Steele/Lea/Flood; cross-checked
  // against an independent implementation). If this ever fails on some
  // platform, the generator's cross-compiler seed contract is broken.
  SplitMix64 a(0);
  EXPECT_EQ(a.next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(a.next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(a.next(), 0x06C45D188009454Full);
  SplitMix64 b(0x0123456789ABCDEFull);
  EXPECT_EQ(b.next(), 0x157A3807A48FAA9Dull);
  EXPECT_EQ(b.next(), 0xD573529B34A1D093ull);
  EXPECT_EQ(b.next(), 0x2F90B72E996DCCBEull);
}

TEST(Rng, BoundedDrawsStayInRangeAndShuffleIsAPermutation) {
  SplitMix64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t n = 1 + (rng.next() % 97);
    EXPECT_LT(rng.below(n), n);
    const std::int64_t lo = -5, hi = 17;
    const std::int64_t v = rng.range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    const double u = rng.real01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  std::vector<int> v(23);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // 23! permutations; identity is astronomically rare
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Generator, SeedReproducesTheSystemBitIdentically) {
  // Satellite contract: any seed printed by the fuzz harness replays to
  // the exact same system — here as two in-process generations whose
  // structural fingerprints (and raw fields) agree.
  const GeneratorConfig config;
  for (const std::uint64_t seed : {1ull, 7ull, 20180319ull}) {
    const GeneratedSystem a = generate_system(config, seed);
    const GeneratedSystem b = generate_system(config, seed);
    EXPECT_EQ(system_fingerprint(a.model), system_fingerprint(b.model));
    ASSERT_EQ(a.model.apps.size(), b.model.apps.size());
    for (std::size_t i = 0; i < a.model.apps.size(); ++i) {
      EXPECT_EQ(a.model.apps[i].program.trace, b.model.apps[i].program.trace);
      EXPECT_EQ(a.model.apps[i].weight, b.model.apps[i].weight);
      EXPECT_EQ(a.model.apps[i].tidle, b.model.apps[i].tidle);
    }
    EXPECT_EQ(a.overlap, b.overlap);
    EXPECT_EQ(a.families, b.families);
  }
}

TEST(Generator, DistinctSeedsGiveDistinctFingerprints) {
  const GeneratorConfig config;
  std::set<std::uint64_t> prints;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    prints.insert(system_fingerprint(generate_system(config, seed).model));
  }
  EXPECT_EQ(prints.size(), 32u);
}

TEST(Generator, FingerprintSeesEveryStructuralField) {
  const GeneratorConfig config;
  const GeneratedSystem sys = generate_system(config, 5);
  const std::uint64_t base = system_fingerprint(sys.model);
  auto mutated = sys.model;
  mutated.apps[0].program.trace[0] ^= 1;
  EXPECT_NE(system_fingerprint(mutated), base);
  mutated = sys.model;
  mutated.apps.back().smax *= 1.0000001;
  EXPECT_NE(system_fingerprint(mutated), base);
  mutated = sys.model;
  mutated.cache_config.miss_cycles += 1;
  EXPECT_NE(system_fingerprint(mutated), base);
}

TEST(Generator, BranchyChanceZeroEmitsNoStructuredPrograms) {
  // Draw-neutral default: with the knob at 0 no RNG draws are spent on the
  // branchy path and every app stays a plain trace (old seeds replay
  // bit-identically).
  const GeneratorConfig config;
  for (const std::uint64_t seed : {1ull, 9ull, 77ull}) {
    const GeneratedSystem sys = generate_system(config, seed);
    for (const auto& app : sys.model.apps) {
      EXPECT_FALSE(app.has_structured());
    }
  }
}

TEST(Generator, BranchyModeIsDeterministicAndTraceIsAConcretePath) {
  GeneratorConfig config;
  config.branchy_chance = 1.0;
  std::size_t structured_apps = 0;
  for (const std::uint64_t seed : {3ull, 9ull, 40ull}) {
    const GeneratedSystem a = generate_system(config, seed);
    const GeneratedSystem b = generate_system(config, seed);
    EXPECT_EQ(system_fingerprint(a.model), system_fingerprint(b.model));
    for (const auto& app : a.model.apps) {
      if (!app.has_structured()) continue;
      ++structured_apps;
      // The shrink/replay contract: app.program.trace stays a single
      // CONCRETE path of the structured tree, verbatim.
      const auto paths = cache::enumerate_paths(app.structured.root, 4096);
      EXPECT_NE(std::find(paths.begin(), paths.end(), app.program.trace),
                paths.end())
          << "trace of " << app.name << " is not a path of its tree";
    }
  }
  EXPECT_GT(structured_apps, 0u);
}

TEST(Generator, FingerprintSeesTheStructuredTree) {
  GeneratorConfig config;
  config.branchy_chance = 1.0;
  const GeneratedSystem sys = generate_system(config, 3);
  auto structured = std::find_if(
      sys.model.apps.begin(), sys.model.apps.end(),
      [](const auto& app) { return app.has_structured(); });
  ASSERT_NE(structured, sys.model.apps.end());
  const std::size_t idx =
      static_cast<std::size_t>(structured - sys.model.apps.begin());
  const std::uint64_t base = system_fingerprint(sys.model);

  auto mutated = sys.model;
  mutated.apps[idx].structured = cache::StructuredProgram{};
  EXPECT_NE(system_fingerprint(mutated), base);

  mutated = sys.model;
  // Branchy construction pins the root shape seq(block, loop): bumping the
  // loop bound must change the fingerprint.
  ASSERT_EQ(mutated.apps[idx].structured.root.kind, cache::Stmt::Kind::seq);
  mutated.apps[idx].structured.root.children[1].bound += 1;
  EXPECT_NE(system_fingerprint(mutated), base);
}

TEST(Generator, GeneratedSystemsAreValidAndAnalyzable) {
  const GeneratorConfig config;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const GeneratedSystem sys = generate_system(config, seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_NO_THROW(sys.model.validate());
    EXPECT_GE(sys.model.apps.size(), config.min_apps);
    EXPECT_LE(sys.model.apps.size(), config.max_apps);
    EXPECT_GE(sys.overlap, 0.0);
    EXPECT_LE(sys.overlap, 1.0);
    const auto& cc = sys.model.cache_config;
    EXPECT_NE(std::find(config.set_choices.begin(), config.set_choices.end(),
                        cc.num_sets()),
              config.set_choices.end());
    EXPECT_NE(std::find(config.way_choices.begin(), config.way_choices.end(),
                        cc.ways()),
              config.way_choices.end());
    // Steady warm state is structural for generated traces.
    const auto wcets = sys.model.analyze_wcets();
    for (const auto& w : wcets) {
      EXPECT_GT(w.warm_seconds, 0.0);
      EXPECT_LE(w.warm_seconds, w.cold_seconds);
    }
  }
}

/// Config pinning the overlap knob's limit regimes: 2 apps, direct-mapped
/// cache, windows small enough that overlap=0 means set-disjoint.
GeneratorConfig overlap_probe_config() {
  GeneratorConfig c;
  c.set_choices = {64};
  c.way_choices = {1};
  c.min_apps = 2;
  c.max_apps = 2;
  c.min_footprint = 0.25;
  c.max_footprint = 0.45;
  return c;
}

TEST(Generator, DisjointFootprintsKeepEveryContextAtWarm) {
  GeneratorConfig config = overlap_probe_config();
  config.overlap = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const GeneratedSystem sys = generate_system(config, seed);
    const auto analyzer = sys.model.make_context_analyzer();
    for (std::size_t app = 0; app < 2; ++app) {
      const std::uint64_t other_mask = std::uint64_t{1} << (1 - app);
      const auto& warm = analyzer->analyze_context(app, 0);
      const auto& ctx = analyzer->analyze_context(app, other_mask);
      EXPECT_EQ(ctx.cycles, warm.cycles)
          << "seed " << seed << " app " << app
          << ": disjoint interference changed the bound";
    }
  }
}

TEST(Generator, CoincidentFootprintsCollapseTheCoveredAppToCold) {
  GeneratorConfig config = overlap_probe_config();
  config.overlap = 1.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const GeneratedSystem sys = generate_system(config, seed);
    const auto analyzer = sys.model.make_context_analyzer();
    // Both windows share one base; the narrower app's footprint is fully
    // covered by the wider one, so its cross context equals cold exactly
    // (on a direct-mapped cache one conflicting line per set suffices).
    bool any_cold = false;
    for (std::size_t app = 0; app < 2; ++app) {
      const std::uint64_t other_mask = std::uint64_t{1} << (1 - app);
      const auto cold = cache::analyze_wcet(sys.model.apps[app].program,
                                            sys.model.cache_config);
      any_cold |= analyzer->analyze_context(app, other_mask).cycles ==
                  cold.cold_cycles;
    }
    EXPECT_TRUE(any_cold) << "seed " << seed;
  }
}

TEST(Invariants, HoldOnGeneratedSystems) {
  const GeneratorConfig config;
  InvariantOptions opts;
  opts.check_searches = false;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    const GeneratedSystem sys = generate_system(config, seed);
    const InvariantReport rep = check_invariants(sys.model, seed, opts);
    EXPECT_TRUE(rep.passed) << rep.detail;
  }
}

TEST(Invariants, SearchIdentityTierHoldsOnOneGeneratedSystem) {
  const GeneratorConfig config;
  InvariantOptions opts;  // searches on (the expensive tier)
  const GeneratedSystem sys = generate_system(config, 3);
  const InvariantReport rep = check_invariants(sys.model, 3, opts);
  EXPECT_TRUE(rep.passed) << rep.detail;
  EXPECT_TRUE(rep.searches_checked);
}

TEST(Invariants, ReportIsDeterministicPerSeed) {
  const GeneratorConfig config;
  InvariantOptions opts;
  opts.check_searches = false;
  const GeneratedSystem sys = generate_system(config, 9);
  const InvariantReport a = check_invariants(sys.model, 9, opts);
  const InvariantReport b = check_invariants(sys.model, 9, opts);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.failed_check, b.failed_check);
  EXPECT_EQ(a.context_strict, b.context_strict);
  EXPECT_EQ(a.rr_feasible, b.rr_feasible);
}

TEST(Shrinker, InjectedFailureReproducesAndShrinks) {
  // The self-test path the acceptance criteria demand: a deliberately
  // false invariant must (1) fail, (2) reproduce from its seed, and
  // (3) shrink to a minimal system that still fails the same check.
  GeneratorConfig config;
  config.way_choices = {1};
  InvariantOptions opts;
  opts.check_searches = false;
  opts.inject_failure = true;
  const std::uint64_t seed = 1;
  const GeneratedSystem sys = generate_system(config, seed);
  const InvariantReport rep = check_invariants(sys.model, seed, opts);
  ASSERT_FALSE(rep.passed);
  EXPECT_EQ(rep.failed_check, "injected-context-below-warm");

  const FailurePredicate fails = make_invariant_predicate(seed, opts);
  EXPECT_EQ(fails(sys.model), rep.failed_check);  // reproduces from seed

  const ShrinkResult shrunk =
      shrink_system(sys.model, rep.failed_check, fails);
  EXPECT_EQ(fails(shrunk.model), rep.failed_check);  // still fails
  // The injected check needs >= 2 apps (a nonzero mask must exist) and
  // nothing else, so the shrinker should reach the structural minimum.
  EXPECT_EQ(shrunk.model.apps.size(), 2u);
  EXPECT_LT(shrunk.sets_after, shrunk.sets_before);
  for (const auto& app : shrunk.model.apps) {
    EXPECT_LE(app.program.trace.size(), 4u);
  }
  EXPECT_GT(shrunk.attempts, 0);
}

TEST(Shrinker, PassingSystemShrinksToNothing) {
  const GeneratorConfig config;
  const GeneratedSystem sys = generate_system(config, 2);
  InvariantOptions opts;
  opts.check_searches = false;
  const FailurePredicate fails = make_invariant_predicate(2, opts);
  // No check fails, so no candidate "reproduces" and the system is kept.
  const ShrinkResult shrunk = shrink_system(sys.model, "wcet-ordering", fails);
  EXPECT_EQ(shrunk.model.apps.size(), sys.model.apps.size());
  EXPECT_EQ(shrunk.removed_apps, 0);
  EXPECT_EQ(shrunk.sets_after, shrunk.sets_before);
}

}  // namespace
