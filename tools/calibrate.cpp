// Dev calibration tool: evaluate the case study under selected schedules,
// print settling times vs the paper's Table III.
#include <cstdio>
#include "core/case_study.hpp"
#include "core/codesign.hpp"

using namespace catsched;

int main(int argc, char** argv) {
  core::SystemModel sys = core::date18_case_study();
  core::Evaluator ev(sys, core::date18_design_options());
  const auto& w = ev.wcets();
  std::printf("WCET C1 %.2f/%.2f us  C2 %.2f/%.2f  C3 %.2f/%.2f\n",
              w[0].cold_seconds*1e6, w[0].warm_seconds*1e6,
              w[1].cold_seconds*1e6, w[1].warm_seconds*1e6,
              w[2].cold_seconds*1e6, w[2].warm_seconds*1e6);
  std::vector<std::vector<int>> scheds = {{1,1,1},{3,2,3}};
  if (argc > 1 && std::string(argv[1]) == "sweep") {
    scheds = {{1,1,1},{2,2,2},{3,2,3},{2,2,3},{3,2,2},{4,2,3},{3,3,3},{3,2,4},{4,2,2},{1,2,1},{2,1,2},{5,2,3},{3,1,3}};
  }
  for (const auto& m : scheds) {
    sched::PeriodicSchedule s(m);
    if (!ev.idle_feasible(s)) { std::printf("%s: idle-INFEASIBLE\n", s.to_string().c_str()); continue; }
    auto r = ev.evaluate(s);
    std::printf("%s: Pall=%.4f %s |", s.to_string().c_str(), r.pall,
                r.feasible() ? "feasible" : "INFEASIBLE");
    for (size_t i = 0; i < r.apps.size(); ++i) {
      std::printf(" s%zu=%.2fms (P=%.3f, umax=%.2f, rho=%.3f)", i+1,
                  r.apps[i].settling_time*1e3, r.apps[i].performance,
                  r.apps[i].design.u_max_abs, r.apps[i].design.spectral_radius);
    }
    std::printf("\n");
  }
  std::printf("designs run: %d / requests %d\n", ev.designs_run(), ev.design_requests());
  return 0;
}
