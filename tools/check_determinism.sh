#!/bin/sh
# Determinism lint (run from the repo root; CI runs it on every push).
#
# The repo's replay contracts (fuzz seeds, memo bit-identity, serial ==
# parallel search results) all rest on every randomized component being
# (a) seeded explicitly and (b) platform-pinned. This gate mechanically
# bans the constructs that silently break them in src/ and tools/:
#
#   1. Nondeterministic sources — rand()/srand(), std::random_device,
#      time(NULL)/time(nullptr), and clock/chrono-seeded engines. Banned
#      everywhere, no allowlist: a single call makes a run unreproducible.
#
#   2. Standard-library RNG engines and distributions (std::mt19937*,
#      std::minstd_*, std::uniform_*_distribution, std::normal_distribution,
#      std::bernoulli_distribution). Distribution output is implementation-
#      defined (libstdc++ and libc++ disagree), so seeds do not replay
#      across toolchains. New code must use testgen::SplitMix64
#      (src/testgen/rng.hpp), whose draw sequence is pinned by
#      known-answer tests. Pre-existing deterministically-seeded uses are
#      grandfathered in ALLOW_STD_RNG below — shrink this list, never grow
#      it.
#
#   3. Range-for iteration over std::unordered_ containers — iteration
#      order is unspecified, so any reduction over it is a portability
#      hazard. Iterate a sorted/vector mirror instead (see
#      encode_interleaved_state, which emits snapshot entries in sorted
#      key order). A provably order-FREE use (e.g. copying one map into
#      another) may carry a `determinism-ok: <reason>` comment on the
#      flagged line to suppress the finding.
#
# Tests and benches are out of scope: gtest sweeps may use std RNGs freely
# (they assert properties, not pinned sequences).
set -u

fail=0

# Grandfathered std-RNG users: every engine here is constructed from an
# explicit opts.seed, so runs replay on ONE toolchain; they predate the
# SplitMix64 contract and migrate opportunistically.
ALLOW_STD_RNG="
src/testgen/rng.hpp
src/cache/structure.cpp
src/control/kalman.cpp
src/control/robustness.cpp
src/core/jitter.cpp
src/opt/anneal.cpp
src/opt/genetic.cpp
src/opt/pso.cpp
"

allowed() {
  # NB: POSIX sh has no local variables — do not reuse the caller's names.
  needle=$1
  for allow_f in $ALLOW_STD_RNG; do
    [ "$allow_f" = "$needle" ] && return 0
  done
  return 1
}

scan_files=$(find src tools -name '*.hpp' -o -name '*.cpp' | sort)

# --- 1. nondeterministic sources: banned outright --------------------------
for f in $scan_files; do
  hits=$(grep -nE '\b(srand|rand) *\(|std::random_device|\btime *\( *(NULL|nullptr) *\)' "$f")
  if [ -n "$hits" ]; then
    echo "check_determinism: nondeterministic source in $f:"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
  # A clock used as an RNG seed (chrono-seeded engines). Clocks are fine
  # for *measuring*; they must never feed an engine or a seed variable.
  hits=$(grep -nE '(mt19937|minstd|seed).*(chrono::|steady_clock|system_clock|high_resolution_clock)|(chrono::|steady_clock|system_clock|high_resolution_clock).*(mt19937|minstd|_seed\b|\bseed\b)' "$f" |
         grep -vE '^\s*[0-9]+:\s*(//|\*|///)')
  if [ -n "$hits" ]; then
    echo "check_determinism: clock-seeded RNG in $f:"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
done

# --- 2. std RNG engines/distributions outside the grandfather list --------
for f in $scan_files; do
  if allowed "$f"; then
    continue
  fi
  hits=$(grep -nE 'std::(mt19937|minstd_rand|uniform_int_distribution|uniform_real_distribution|normal_distribution|bernoulli_distribution)' "$f")
  if [ -n "$hits" ]; then
    echo "check_determinism: std RNG in non-allowlisted file $f (use testgen::SplitMix64):"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
done

# --- 3. iteration over unordered containers --------------------------------
# Two layers: (a) range-for directly over an expression mentioning
# "unordered"; (b) range-for over any identifier the same file declares as
# a std::unordered_ container (extracted from the declaration's trailing
# name). Heuristic by design — it catches the direct reduction pattern,
# not aliases passed across functions.
for f in $scan_files; do
  hits=$(grep -nE 'for *\(.*:.*unordered' "$f" | grep -v 'determinism-ok')
  names=$(grep -oE 'std::unordered_(map|set|multimap|multiset)<[^;{]*> +[a-zA-Z_][a-zA-Z0-9_]*' "$f" |
          sed -E 's/.*> +//' | sort -u)
  for name in $names; do
    more=$(grep -nE "for *\(.*: *(this->)?${name}[) ]" "$f" |
           grep -v 'determinism-ok')
    if [ -n "$more" ]; then
      hits="${hits}${hits:+
}${more}"
    fi
  done
  if [ -n "$hits" ]; then
    echo "check_determinism: range-for over an unordered container in $f:"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_determinism: FAILED (see above)"
  exit 1
fi
echo "check_determinism: OK"
