#!/bin/sh
# Docs hygiene gate (run from the repo root; CI runs it on every push):
#   * every src/<module>/ directory must be covered in docs/ARCHITECTURE.md
#   * every bench/bench_*.cpp target must be covered in docs/BENCHMARKS.md
#   * every tools/*.cpp developer tool must be covered in docs/ARCHITECTURE.md
#   * docs/ARCHITECTURE.md must carry the "Test generation & fuzzing" and
#     "Robustness & failure semantics" sections, docs/BENCHMARKS.md the
#     fuzz_invariants sweep and bench_snapshot checkpoint-overhead entries
#     (these surfaces must stay documented, not just listed)
#   * README must link both documents
# Exits non-zero listing everything missing, so adding a module or bench
# without documenting it fails the build.
set -u

fail=0

if [ ! -f docs/ARCHITECTURE.md ]; then
  echo "check_docs: docs/ARCHITECTURE.md is missing"
  exit 1
fi
if [ ! -f docs/BENCHMARKS.md ]; then
  echo "check_docs: docs/BENCHMARKS.md is missing"
  exit 1
fi

for dir in src/*/; do
  mod=$(basename "$dir")
  # grep -w: "src/cache" must not be satisfied by e.g. "src/cache_foo".
  if ! grep -qw "src/$mod" docs/ARCHITECTURE.md; then
    echo "check_docs: module src/$mod is not documented in docs/ARCHITECTURE.md"
    fail=1
  fi
done

for bench in bench/bench_*.cpp; do
  name=$(basename "$bench" .cpp)
  # grep -w: "bench_parallel" must not match inside "bench_parallel_scaling"
  # ('_' is a word constituent, so -w rejects the prefix match).
  if ! grep -qw "$name" docs/BENCHMARKS.md; then
    echo "check_docs: bench target $name is not documented in docs/BENCHMARKS.md"
    fail=1
  fi
done

for tool in tools/*.cpp; do
  name=$(basename "$tool" .cpp)
  if ! grep -qw "$name" docs/ARCHITECTURE.md; then
    echo "check_docs: tool $name is not documented in docs/ARCHITECTURE.md"
    fail=1
  fi
done

if ! grep -q "Test generation & fuzzing" docs/ARCHITECTURE.md; then
  echo "check_docs: docs/ARCHITECTURE.md lacks the 'Test generation & fuzzing' section"
  fail=1
fi
if ! grep -q "Robustness & failure semantics" docs/ARCHITECTURE.md; then
  echo "check_docs: docs/ARCHITECTURE.md lacks the 'Robustness & failure semantics' section"
  fail=1
fi
if ! grep -qw "bench_snapshot" docs/BENCHMARKS.md; then
  echo "check_docs: the checkpoint-overhead bench is not documented in docs/BENCHMARKS.md"
  fail=1
fi
if ! grep -qw "fuzz_invariants" docs/BENCHMARKS.md; then
  echo "check_docs: the fuzz_invariants sweep is not documented in docs/BENCHMARKS.md"
  fail=1
fi
# The static-analysis story (PR 9): the three-domain writeup, the
# first-miss bound-tightness numbers, and the README before/after table
# must not silently rot.
if ! grep -q "Static cache analysis" docs/ARCHITECTURE.md; then
  echo "check_docs: docs/ARCHITECTURE.md lacks the 'Static cache analysis' section"
  fail=1
fi
if ! grep -qi "first-miss" docs/BENCHMARKS.md; then
  echo "check_docs: docs/BENCHMARKS.md does not cover the first-miss bound tightness"
  fail=1
fi
if ! grep -q "AM-only bound" README.md; then
  echo "check_docs: README.md lacks the first-miss before/after bound table"
  fail=1
fi

# The anytime-search story (PR 10): the portfolio/driver API writeup,
# the racing bench entry, and the README evals-to-best table must not
# silently rot.
if ! grep -q "Search portfolio & driver API" docs/ARCHITECTURE.md; then
  echo "check_docs: docs/ARCHITECTURE.md lacks the 'Search portfolio & driver API' section"
  fail=1
fi
if ! grep -qw "portfolio_search" docs/BENCHMARKS.md; then
  echo "check_docs: docs/BENCHMARKS.md does not cover the portfolio racing bench"
  fail=1
fi
if ! grep -q "unique evals" README.md; then
  echo "check_docs: README.md lacks the portfolio evals-to-best table"
  fail=1
fi

for doc in docs/ARCHITECTURE.md docs/BENCHMARKS.md; do
  if ! grep -q "$doc" README.md; then
    echo "check_docs: README.md does not link $doc"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "check_docs: all modules, bench targets, and README links covered"
fi
exit "$fail"
