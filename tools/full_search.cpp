// Dev tool: full exhaustive + hybrid search on the case study.
#include <algorithm>
#include <cstdio>

#include "core/case_study.hpp"
#include "core/codesign.hpp"

using namespace catsched;

int main() {
  core::SystemModel sys = core::date18_case_study();
  core::Evaluator ev(sys, core::date18_design_options());

  opt::HybridOptions hopts;
  hopts.tolerance = 0.005;

  const auto region = opt::enumerate_feasible(
      core::make_cheap_feasible(ev), sys.num_apps(), hopts);
  std::printf("idle-feasible schedules: %zu\n", region.size());

  auto ex = core::exhaustive_codesign(ev, hopts);
  std::printf("exhaustive: evaluated=%d control-feasible=%d best=%s Pall=%.4f\n",
              ex.details.enumerated, ex.details.control_feasible,
              ex.best_schedule.to_string().c_str(), ex.details.best_value);
  // Top 8 schedules:
  auto all = ex.details.all;
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second.value > b.second.value;
  });
  for (std::size_t i = 0; i < 8 && i < all.size(); ++i) {
    std::printf("  #%zu (%d,%d,%d) Pall=%.4f%s\n", i + 1, all[i].first[0],
                all[i].first[1], all[i].first[2], all[i].second.value,
                all[i].second.feasible ? "" : " (infeasible)");
  }

  core::Evaluator ev2(sys, core::date18_design_options());
  auto hy = core::find_optimal_schedule(ev2, {{4, 2, 2}, {1, 2, 1}}, hopts);
  std::printf("hybrid: best=%s Pall=%.4f unique evals=%d\n",
              hy.best_schedule.to_string().c_str(),
              hy.best_evaluation.pall, hy.schedules_evaluated);
  for (std::size_t i = 0; i < hy.search.runs.size(); ++i) {
    const auto& run = hy.search.runs[i];
    std::printf("  start %zu: best=(%d,%d,%d) value=%.4f new evals=%d steps=%d\n",
                i, run.best[0], run.best[1], run.best[2], run.best_value,
                run.evaluations, run.steps);
  }
  return 0;
}
