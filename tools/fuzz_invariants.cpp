// Property-based invariant fuzzer over generated co-design systems.
//
// Sweeps seeds through src/testgen: each seed becomes one generated
// SystemModel (testgen/generator) whose full invariant surface is
// re-checked (testgen/invariants) — WCET ordering/monotonicity, concrete
// replay bounds, timing-derivation identities, evaluator delta/memo
// contracts, EDF/RM consistency, and (on a stride of seeds) the
// serial-vs-parallel bit-identity of every search engine. A failure
// prints the offending seed, shrinks the system (testgen/shrink), and
// exits nonzero; the summary aggregates where context WCETs, interleaving
// and preemption actually pay across the sweep.
//
// Usage:
//   fuzz_invariants [--seeds N] [--start S] [--search-stride K]
//                   [--no-search] [--summary FILE] [--fast]
//                   [--max-seconds S] [--inject-failure]
//                   [--inject-eval-fault] [--seed X]
//
//   --seeds N          sweep N consecutive seeds (default 100)
//   --start S          first seed of the sweep (default 1)
//   --search-stride K  run the expensive search-identity tier on every
//                      K-th seed (default 8; 1 = every seed)
//   --no-search        skip the search tier entirely
//   --summary FILE     additionally write the sweep summary to FILE
//   --fast             bounded PR-matrix run: 8 seeds, stride 4
//   --max-seconds S    wall-clock budget (core::RunBudget deadline,
//                      checked between seeds): the sweep stops cleanly at
//                      the deadline, reports how many seeds completed and
//                      the StopReason, and exits 0 — an interrupted sweep
//                      is a valid (anytime) sweep
//   --inject-failure   self-test: assert a deliberately false invariant,
//                      proving the failure path (seed print + shrink) works
//   --inject-eval-fault  self-test: inject a controller-design fault
//                      (core::FaultPlan) into a pooled evaluation, proving
//                      the fault propagates as FaultInjected and the memo
//                      entry stays retryable (the retried run succeeds)
//   --seed X           replay one seed: generate twice, compare
//                      fingerprints, run the full invariant surface
//                      (searches included), print the report

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/codesign.hpp"
#include "core/fault.hpp"
#include "core/run_budget.hpp"
#include "testgen/generator.hpp"
#include "testgen/invariants.hpp"
#include "testgen/shrink.hpp"

namespace {

using catsched::testgen::GeneratedSystem;
using catsched::testgen::GeneratorConfig;
using catsched::testgen::InvariantOptions;
using catsched::testgen::InvariantReport;
using catsched::testgen::ShrinkResult;

struct Args {
  std::uint64_t seeds = 100;
  std::uint64_t start = 1;
  std::uint64_t search_stride = 8;
  bool no_search = false;
  bool inject = false;
  bool inject_eval_fault = false;
  bool replay = false;
  std::uint64_t replay_seed = 0;
  double max_seconds = 0.0;
  std::string summary_file;
};

std::uint64_t parse_u64(const std::string& s, const char* flag) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    std::cerr << "fuzz_invariants: bad value for " << flag << ": " << s
              << "\n";
    std::exit(2);
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fuzz_invariants: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      a.seeds = parse_u64(next(), "--seeds");
    } else if (arg == "--start") {
      a.start = parse_u64(next(), "--start");
    } else if (arg == "--search-stride") {
      a.search_stride = parse_u64(next(), "--search-stride");
    } else if (arg == "--no-search") {
      a.no_search = true;
    } else if (arg == "--summary") {
      a.summary_file = next();
    } else if (arg == "--fast") {
      a.seeds = 8;
      a.search_stride = 4;
    } else if (arg == "--max-seconds") {
      a.max_seconds = std::atof(next().c_str());
    } else if (arg == "--inject-failure") {
      a.inject = true;
    } else if (arg == "--inject-eval-fault") {
      a.inject_eval_fault = true;
    } else if (arg == "--seed") {
      a.replay = true;
      a.replay_seed = parse_u64(next(), "--seed");
    } else {
      std::cerr << "fuzz_invariants: unknown argument " << arg << "\n";
      std::exit(2);
    }
  }
  return a;
}

InvariantOptions base_options(const Args& args) {
  InvariantOptions opts;
  opts.inject_failure = args.inject;
  return opts;
}

/// The sweep's generator configuration: branchy structured programs are
/// enabled so the first-miss (persistence) invariant tier actually has a
/// surface to bite on — roughly a third of the generated apps carry an
/// if/else-in-loop tree next to their representative trace.
GeneratorConfig sweep_config() {
  GeneratorConfig config;
  config.branchy_chance = 0.35;
  return config;
}

/// Report a failure: seed, check, detail, then the shrunk counterexample.
void report_failure(const GeneratedSystem& sys, const InvariantReport& rep,
                    const InvariantOptions& opts) {
  std::cout << "FAIL seed=" << sys.seed << " check=" << rep.failed_check
            << "\n  " << rep.detail << "\n"
            << "  replay: fuzz_invariants --seed " << sys.seed
            << (opts.inject_failure ? " --inject-failure" : "") << "\n"
            << "  shrinking..." << std::flush;
  const ShrinkResult shrunk = catsched::testgen::shrink_system(
      sys.model, rep.failed_check,
      catsched::testgen::make_invariant_predicate(sys.seed, opts));
  std::cout << " done (" << shrunk.attempts << " attempts)\n"
            << "  minimal failing system: " << shrunk.model.apps.size()
            << " apps (was " << sys.model.apps.size() << "), "
            << shrunk.sets_after << " cache sets (was " << shrunk.sets_before
            << ")";
  std::cout << ", traces:";
  for (const auto& app : shrunk.model.apps) {
    std::cout << " " << app.name << "=" << app.program.trace.size();
  }
  std::cout << "\n";
}

int replay(const Args& args) {
  const GeneratorConfig config = sweep_config();
  const GeneratedSystem a =
      catsched::testgen::generate_system(config, args.replay_seed);
  const GeneratedSystem b =
      catsched::testgen::generate_system(config, args.replay_seed);
  const std::uint64_t fa = catsched::testgen::system_fingerprint(a.model);
  const std::uint64_t fb = catsched::testgen::system_fingerprint(b.model);
  std::cout << "seed " << args.replay_seed << ": fingerprint 0x" << std::hex
            << fa << " / 0x" << fb << std::dec
            << (fa == fb ? " (reproducible)" : " (MISMATCH)") << "\n";
  if (fa != fb) return 1;

  InvariantOptions opts = base_options(args);
  opts.check_searches = !args.no_search;
  const InvariantReport rep =
      catsched::testgen::check_invariants(a.model, a.seed, opts);
  std::cout << "apps=" << a.model.apps.size()
            << " sets=" << a.model.cache_config.num_sets()
            << " ways=" << a.model.cache_config.ways()
            << " overlap=" << a.overlap << "\n";
  if (!rep.passed) {
    report_failure(a, rep, opts);
    return 1;
  }
  std::cout << "PASS (context_strict=" << rep.context_strict
            << " searches_checked=" << rep.searches_checked
            << " interleaving_won=" << rep.interleaving_won
            << " preemption_feasible=" << rep.preemption_feasible
            << " fm_apps=" << rep.fm_apps
            << " fm_tightened=" << rep.fm_tightened_apps
            << " fm_reduction_cycles=" << rep.fm_reduction_cycles << ")\n";
  return 0;
}

/// --inject-eval-fault self-test: arm a one-shot controller-design fault
/// (core::FaultPlan) on a pooled evaluator and evaluate a generated
/// system's round-robin schedule. The fault must surface as FaultInjected
/// through the worker threads (no deadlock, no hang), and — because an
/// exceptional compute never latches the memo's once-flag — the retried
/// evaluation must succeed. Seeds are scanned until one is idle-feasible,
/// since an infeasible schedule never reaches a controller design.
int inject_eval_fault_selftest() {
  const GeneratorConfig config;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const GeneratedSystem sys =
        catsched::testgen::generate_system(config, seed);
    catsched::core::ThreadPool pool(4);
    catsched::core::FaultPlan fault;
    fault.fail_evaluation_at = 1;
    catsched::core::EvaluatorOptions eopts;
    eopts.fault = &fault;
    catsched::core::Evaluator ev(
        sys.model, catsched::testgen::fuzz_design_options(), &pool, eopts);
    const catsched::sched::PeriodicSchedule rr(
        std::vector<int>(sys.model.apps.size(), 1));
    if (!ev.idle_feasible(rr)) continue;

    bool threw = false;
    try {
      ev.evaluate(rr);
    } catch (const catsched::core::FaultInjected&) {
      threw = true;
    }
    if (!threw) {
      std::cout << "FAIL: injected design fault did not surface (seed "
                << seed << ")\n";
      return 1;
    }
    const auto out = ev.evaluate(rr);
    if (!out.idle_feasible) {
      std::cout << "FAIL: retried evaluation lost feasibility (seed " << seed
                << ")\n";
      return 1;
    }
    std::cout << "inject-eval-fault: OK (seed " << seed
              << ": fault surfaced as FaultInjected, retried evaluation "
                 "succeeded — memo entry not poisoned)\n";
    return 0;
  }
  std::cout << "FAIL: no idle-feasible round-robin seed in [1, 32]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.replay) return replay(args);
  if (args.inject_eval_fault) return inject_eval_fault_selftest();

  const GeneratorConfig config = sweep_config();
  std::uint64_t passed = 0;
  std::uint64_t context_strict = 0;
  std::uint64_t searches_checked = 0;
  std::uint64_t interleaving_won = 0;
  std::uint64_t preemption_feasible = 0;
  std::uint64_t rr_feasible = 0;
  std::uint64_t fm_apps = 0;
  std::uint64_t fm_tightened = 0;
  std::uint64_t fm_reduction = 0;

  // Anytime sweep: the wall-clock budget is checked between seeds, so a
  // fired deadline ends the sweep cleanly after the current seed — every
  // completed seed still counts and the exit stays 0.
  catsched::core::RunBudget budget;
  if (args.max_seconds > 0.0) budget.set_deadline_after(args.max_seconds);

  for (std::uint64_t i = 0; i < args.seeds; ++i) {
    if (budget.cancelled()) break;
    const std::uint64_t seed = args.start + i;
    InvariantOptions opts = base_options(args);
    opts.check_searches = !args.no_search && args.search_stride > 0 &&
                          i % args.search_stride == 0;
    const GeneratedSystem sys =
        catsched::testgen::generate_system(config, seed);
    const InvariantReport rep =
        catsched::testgen::check_invariants(sys.model, seed, opts);
    if (!rep.passed) {
      report_failure(sys, rep, opts);
      return 1;
    }
    ++passed;
    context_strict += rep.context_strict ? 1 : 0;
    searches_checked += rep.searches_checked ? 1 : 0;
    interleaving_won += rep.interleaving_won ? 1 : 0;
    preemption_feasible += rep.preemption_feasible ? 1 : 0;
    rr_feasible += rep.rr_feasible ? 1 : 0;
    fm_apps += rep.fm_apps;
    fm_tightened += rep.fm_tightened_apps;
    fm_reduction += rep.fm_reduction_cycles;
    if ((i + 1) % 50 == 0) {
      std::cout << "... " << (i + 1) << "/" << args.seeds << " systems ok"
                << std::endl;
    }
  }

  std::ostringstream summary;
  const double pct = 100.0 / static_cast<double>(args.seeds);
  summary << "catsched invariant fuzz summary\n"
          << "seeds: [" << args.start << ", " << args.start + args.seeds
          << ")\n"
          << "systems passed: " << passed << "/" << args.seeds << "\n";
  if (args.max_seconds > 0.0) {
    summary << "wall-clock budget: " << args.max_seconds
            << "s, stop reason: "
            << catsched::core::to_string(budget.reason()) << " (" << passed
            << " seeds completed before the budget fired)\n";
  }
  summary
          << "context WCET strictly between warm and cold: " << context_strict
          << " (" << static_cast<double>(context_strict) * pct << "%)\n"
          << "search-identity tier ran on: " << searches_checked
          << " systems\n"
          << "interleaving beat best periodic: " << interleaving_won << "/"
          << searches_checked << "\n"
          << "preemptive RM+CRPD feasible at T=tidle: " << preemption_feasible
          << " (" << static_cast<double>(preemption_feasible) * pct << "%)\n"
          << "round-robin (all-ones) idle-feasible: " << rr_feasible << " ("
          << static_cast<double>(rr_feasible) * pct << "%)\n"
          << "first-miss tightened the bound on " << fm_tightened << "/"
          << fm_apps << " structured apps"
          << (fm_apps > 0
                  ? " (" + std::to_string(static_cast<double>(fm_tightened) *
                                          100.0 /
                                          static_cast<double>(fm_apps)) +
                        "%)"
                  : "")
          << ", total reduction " << fm_reduction << " cycles\n";
  std::cout << summary.str();
  if (!args.summary_file.empty()) {
    std::ofstream out(args.summary_file);
    if (!out) {
      std::cerr << "fuzz_invariants: cannot write " << args.summary_file
                << "\n";
      return 1;
    }
    out << summary.str();
  }
  return 0;
}
