#!/bin/sh
# Kill-and-resume determinism smoke (CI runs it under ctest, label: fuzz).
#
#   kill_resume_smoke.sh <path-to-search_server> [search] [crash-at-eval]
#
# Proves the anytime layer's crash-recovery contract end to end on a real
# process boundary, not just in-process gtest:
#   1. fresh run           -> reference RESULT line
#   2. crash run           -> search_server kills itself (std::_Exit 137)
#                             mid-controller-design, leaving whatever
#                             checkpoint the atomic rename path last
#                             published
#   3. resume run          -> must report resumed=1 and reproduce the
#                             reference best schedule / Pall bits / eval
#                             count exactly
#   4. damaged-resume run  -> the primary checkpoint is truncated on disk;
#                             the loader must reject it, fall back to the
#                             .prev snapshot (fallback=1) and still
#                             converge bit-identically
set -u

BIN=${1:?usage: kill_resume_smoke.sh <path-to-search_server> [search] [crash-at-eval]}
SEARCH=${2:-hybrid}
CRASH_AT=${3:-15}

TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT INT TERM
CK="$TMP/ck.snap"
fail=0

# The invariant part of a RESULT line: strip the fields that legitimately
# differ between a fresh and a resumed run (stop/resumed/fallback/
# checkpoint counters); best schedule, Pall bit pattern, and the published
# evaluation count must match exactly.
invariant() {
  sed -E 's/ stop=[a-z_]+| resumed=[0-9]+| fallback=[0-9]+| checkpoints=[0-9]+//g'
}

echo "kill_resume_smoke: search=$SEARCH crash-at-eval=$CRASH_AT"

fresh=$("$BIN" --search "$SEARCH")
if [ $? -ne 0 ]; then
  echo "FAIL: fresh run did not exit 0"
  exit 1
fi
echo "fresh:   $fresh"

"$BIN" --search "$SEARCH" --checkpoint "$CK" --crash-at-eval "$CRASH_AT"
status=$?
if [ "$status" -ne 137 ]; then
  echo "FAIL: crash run exited $status, expected 137 (simulated hard kill)"
  exit 1
fi
if [ ! -f "$CK" ]; then
  echo "FAIL: crash run left no checkpoint at $CK"
  exit 1
fi

resumed=$("$BIN" --search "$SEARCH" --checkpoint "$CK")
if [ $? -ne 0 ]; then
  echo "FAIL: resume run did not exit 0"
  exit 1
fi
echo "resumed: $resumed"
case "$resumed" in
  *" resumed=1 "*) ;;
  *) echo "FAIL: resume run did not report resumed=1"; fail=1 ;;
esac
if [ "$(echo "$fresh" | invariant)" != "$(echo "$resumed" | invariant)" ]; then
  echo "FAIL: resumed result differs from the uninterrupted run"
  fail=1
fi

# Damage the primary checkpoint (truncate to half) and resume again: the
# framing check must reject it and the .prev fallback must serve.
size=$(wc -c < "$CK")
truncate -s $((size / 2)) "$CK"
if [ ! -f "$CK.prev" ]; then
  echo "FAIL: no $CK.prev rotation snapshot on disk"
  exit 1
fi
damaged=$("$BIN" --search "$SEARCH" --checkpoint "$CK")
if [ $? -ne 0 ]; then
  echo "FAIL: damaged-checkpoint resume did not exit 0"
  exit 1
fi
echo "damaged: $damaged"
case "$damaged" in
  *" fallback=1 "*) ;;
  *) echo "FAIL: damaged-checkpoint run did not report fallback=1"; fail=1 ;;
esac
if [ "$(echo "$fresh" | invariant)" != "$(echo "$damaged" | invariant)" ]; then
  echo "FAIL: fallback-resumed result differs from the uninterrupted run"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "kill_resume_smoke: OK ($SEARCH crash+resume and corrupt+fallback both bit-identical)"
