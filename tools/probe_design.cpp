// Probe: single-app design quality vs PSO budget, C1 under RR and (3,2,3).
#include <cstdio>
#include "core/case_study.hpp"
#include "core/evaluator.hpp"

using namespace catsched;

int main() {
  core::SystemModel sys = core::date18_case_study();
  auto wcets = sys.analyze_wcets();
  for (int app = 0; app < 3; ++app) {
    for (auto& m : {std::vector<int>{1,1,1}, {3,2,3}}) {
      auto timing = sched::derive_timing(wcets, sched::PeriodicSchedule(m));
      control::DesignSpec spec;
      const auto& a = sys.apps[app];
      spec.plant = a.plant; spec.umax = a.umax; spec.r = a.r;
      spec.y0 = a.y0; spec.smax = a.smax;
      for (int budget : {1, 4}) {
        auto opts = core::date18_design_options();
        opts.pso.particles *= budget; opts.pso.iterations *= budget;
        opts.pso_restarts = budget > 1 ? 4 : 2;
        auto r = control::design_controller(spec, timing.apps[app].intervals, opts);
        std::printf("app%d m=(%d,%d,%d) budget=%d: s=%.2fms umax=%.3f rho=%.3f evals=%d\n",
                    app+1, m[0], m[1], m[2], budget, r.settling_time*1e3,
                    r.u_max_abs, r.spectral_radius, r.pso_evaluations);
      }
    }
  }
  return 0;
}
