// Dev tool: sweep plant parameterizations, comparing worst-case settling
// under (1,1,1) vs (3,2,3) timing of the case study WCETs, to find a
// region reproducing the paper's 13-17% improvements.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "control/design.hpp"
#include "core/case_study.hpp"
#include "sched/timing.hpp"

using namespace catsched;

namespace {

struct Candidate {
  std::string tag;
  control::ContinuousLTI plant;
  double umax, r, y0, smax;
};

double run(const Candidate& c, const std::vector<sched::Interval>& ivs) {
  control::DesignSpec spec;
  spec.plant = c.plant;
  spec.umax = c.umax;
  spec.r = c.r;
  spec.y0 = c.y0;
  spec.smax = c.smax;
  auto opts = core::date18_design_options();
  if (std::getenv("DENSE_SETTLE")) opts.settle_on_samples = false;
  return control::design_controller(spec, ivs, opts).settling_time;
}

}  // namespace

int main(int argc, char** argv) {
  const int app = argc > 1 ? std::atoi(argv[1]) : 2;  // which app's timing
  std::vector<sched::AppWcet> w = {
      {core::Date18Wcets::c1_cold, core::Date18Wcets::c1_warm},
      {core::Date18Wcets::c2_cold, core::Date18Wcets::c2_warm},
      {core::Date18Wcets::c3_cold, core::Date18Wcets::c3_warm}};
  auto t_rr = sched::derive_timing(w, sched::PeriodicSchedule({1, 1, 1}));
  auto t_ca = sched::derive_timing(w, sched::PeriodicSchedule({3, 2, 3}));

  std::vector<Candidate> cands;
  if (app == 2) {  // C3 wedge brake variants
    for (double w0 : {90.0, 110.0, 130.0}) {
      for (double zeta : {0.1, 0.2}) {
        for (double umax : {20.0, 30.0, 60.0}) {
          Candidate c;
          c.tag = "w0=" + std::to_string((int)w0) + " z=" + std::to_string(zeta).substr(0,4) +
                  " U=" + std::to_string((int)umax);
          c.plant.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -2.0 * zeta * w0}};
          c.plant.b = linalg::Matrix{{0.0}, {3.0e6}};
          c.plant.c = linalg::Matrix{{1.0, 0.0}};
          c.umax = umax; c.r = 2000.0; c.y0 = 0.0; c.smax = 17.5e-3;
          cands.push_back(c);
        }
      }
    }
  } else if (app == 1) {  // C2 DC motor variants
    for (double kel : {110.0, 140.0, 180.0}) {  // w0 of drivetrain mode
      for (double rl : {0.1, 0.15}) {             // zeta
        for (double umax : {12.0, 25.0, 45.0}) {  // authority ratio scan
          Candidate c;
          c.tag = "kel=" + std::to_string((int)kel) + " rl=" + std::to_string((int)rl) +
                  " U=" + std::to_string((int)umax);
          c.plant.a = linalg::Matrix{{0.0, 1.0}, {-kel * kel, -2.0 * rl * kel}};
          c.plant.b = linalg::Matrix{{0.0}, {kel * kel * 35.0 * 7.4 / 12.0}};
          c.plant.c = linalg::Matrix{{1.0, 0.0}};
          c.umax = umax; c.r = 115.0; c.y0 = 80.0; c.smax = 20.0e-3;
          cands.push_back(c);
        }
      }
    }
  } else {  // C1 servo variants
    for (double a : {90.0, 120.0, 150.0}) {     // w0 of self-centering servo
      for (double b : {10000.0, 17500.0, 28000.0}) {
        for (double umax : {1.0}) {
          Candidate c;
          c.tag = "w0=" + std::to_string((int)a) + " b=" + std::to_string((int)b) +
                  " U=" + std::to_string(umax).substr(0,4);
          c.plant.a = linalg::Matrix{{0.0, 1.0}, {-a * a, -2.0 * 0.15 * a}};
          c.plant.b = linalg::Matrix{{0.0}, {b}};
          c.plant.c = linalg::Matrix{{1.0, 0.0}};
          c.umax = umax; c.r = 0.26; c.y0 = 0.0; c.smax = 45.0e-3;
          cands.push_back(c);
        }
      }
    }
  }

  for (const auto& c : cands) {
    const double s_rr = run(c, t_rr.apps[app].intervals);
    const double s_ca = run(c, t_ca.apps[app].intervals);
    const double imp = (s_rr - s_ca) / s_rr * 100.0;
    std::printf("%-28s  RR=%6.2fms  CA=%6.2fms  improvement=%+5.1f%%\n",
                c.tag.c_str(), s_rr * 1e3, s_ca * 1e3, imp);
  }
  return 0;
}
