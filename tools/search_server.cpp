// Dev tool: anytime/fault-tolerant search driver — the harness behind the
// kill-and-resume CI smoke and a manual playground for the robustness
// layer. Runs one Stage-2 search (hybrid multistart, exhaustive, or
// interleaved) on a reduced two-app system with checkpointing, budgets and
// fault injection on the command line:
//
//   search_server --search hybrid --checkpoint /tmp/ck.snap
//   search_server --search interleaved --checkpoint ck.snap --crash-at-eval 7
//   search_server --search exhaustive --max-seconds 0.5
//
// The final RESULT line is machine-parseable and prints Pall as the raw
// IEEE-754 bit pattern, so tools/kill_resume_smoke.sh can assert that a
// crashed-and-resumed run converges bit-identically to an uninterrupted
// one. --crash-at-eval N simulates a hard death (std::_Exit(137), no
// destructors, no flushes) in the middle of the Nth controller design;
// --corrupt-at-save N damages the Nth checkpoint write to exercise the
// checksum-reject + .prev-fallback path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <string>
#include <vector>

#include "cache/program.hpp"
#include "core/case_study.hpp"
#include "core/codesign.hpp"
#include "core/fault.hpp"
#include "core/interleaved_codesign.hpp"
#include "core/run_budget.hpp"

using namespace catsched;

namespace {

/// Reduced two-app system in the spirit of the DATE'18 case study (same
/// cache, smaller programs, cheap deterministic design budget) — the same
/// recipe the parallel-equivalence tests use, so a full search finishes in
/// seconds while still exercising the whole pipeline.
core::SystemModel reduced_system() {
  core::SystemModel sys;
  sys.cache_config = core::date18_cache_config();
  const std::size_t sets = sys.cache_config.num_sets();

  auto make_app = [&](const char* name, std::size_t singles,
                      std::size_t groups, std::uint64_t base, double w0,
                      double weight) {
    core::Application a;
    a.name = name;
    cache::CalibratedLayout lay;
    lay.singleton_lines = singles;
    lay.conflict_group_sizes.assign(groups, 2);
    lay.extra_hit_fetches = 10;
    a.program = cache::make_calibrated_program(name, lay, sets, base);
    control::ContinuousLTI p;
    p.a = linalg::Matrix{{0.0, 1.0}, {-w0 * w0, -0.4 * w0}};
    p.b = linalg::Matrix{{0.0}, {3.0e6}};
    p.c = linalg::Matrix{{1.0, 0.0}};
    a.plant = p;
    a.weight = weight;
    a.smax = 25e-3;
    a.tidle = 9e-3;
    a.umax = 80.0;
    a.r = 1000.0;
    a.y0 = 0.0;
    return a;
  };
  sys.apps = {make_app("A", 100, 16, 0, 110.0, 0.6),
              make_app("B", 90, 22, 1024, 140.0, 0.4)};
  return sys;
}

control::DesignOptions fast_options() {
  control::DesignOptions o = core::date18_design_options();
  o.pso.particles = 10;
  o.pso.iterations = 12;
  o.pso.stall_iterations = 6;
  o.pso_restarts = 1;
  o.scale_budget_with_dims = false;
  return o;
}

struct Args {
  std::string search = "hybrid";  // hybrid | exhaustive | interleaved
  std::string checkpoint;         // empty = no checkpointing
  int checkpoint_every = 1;       // aggressive: smoke wants frequent saves
  double max_seconds = 0.0;       // 0 = no deadline
  std::uint64_t max_evals = 0;    // 0 = no cap
  std::uint64_t crash_at_eval = 0;
  std::uint64_t corrupt_at_save = 0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--search hybrid|exhaustive|interleaved]\n"
      "          [--checkpoint PATH] [--checkpoint-every N]\n"
      "          [--max-seconds S] [--max-evals N]\n"
      "          [--crash-at-eval N] [--corrupt-at-save N]\n",
      argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--search") {
      a.search = value();
    } else if (arg == "--checkpoint") {
      a.checkpoint = value();
    } else if (arg == "--checkpoint-every") {
      a.checkpoint_every = std::atoi(value());
    } else if (arg == "--max-seconds") {
      a.max_seconds = std::atof(value());
    } else if (arg == "--max-evals") {
      a.max_evals = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--crash-at-eval") {
      a.crash_at_eval = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--corrupt-at-save") {
      a.corrupt_at_save = std::strtoull(value(), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (a.search != "hybrid" && a.search != "exhaustive" &&
      a.search != "interleaved") {
    usage(argv[0]);
  }
  return a;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void print_result(const Args& args, const std::string& best, double pall,
                  bool found, int evaluations, core::StopReason stop,
                  bool resumed, bool used_fallback, int checkpoints) {
  std::printf("RESULT search=%s found=%d best=%s pall=%016llx evals=%d "
              "stop=%s resumed=%d fallback=%d checkpoints=%d\n",
              args.search.c_str(), found ? 1 : 0, best.c_str(),
              static_cast<unsigned long long>(bits(pall)), evaluations,
              core::to_string(stop), resumed ? 1 : 0, used_fallback ? 1 : 0,
              checkpoints);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  core::RunBudget budget;
  if (args.max_seconds > 0.0) budget.set_deadline_after(args.max_seconds);
  if (args.max_evals > 0) budget.set_max_evaluations(args.max_evals);

  core::FaultPlan fault;
  fault.corrupt_snapshot_at = args.corrupt_at_save;
  if (args.crash_at_eval > 0) {
    fault.fail_evaluation_at = args.crash_at_eval;
    // Simulated hard crash: no destructors, no stream flushes, no pending
    // checkpoint rename completes — exactly what kill -9 mid-run leaves.
    fault.on_evaluation_fault = [] { std::_Exit(137); };
  }

  core::EvaluatorOptions eopts;
  eopts.fault = args.crash_at_eval > 0 ? &fault : nullptr;
  core::Evaluator ev(reduced_system(), fast_options(), nullptr, eopts);

  if (args.search == "interleaved") {
    core::InterleavedSearchOptions iopts;
    iopts.max_segments = 4;
    iopts.max_burst = 4;
    iopts.anytime.budget = &budget;
    iopts.anytime.checkpoint_path = args.checkpoint;
    iopts.anytime.checkpoint_every = args.checkpoint_every;
    iopts.anytime.fault = args.corrupt_at_save > 0 ? &fault : nullptr;
    const auto start = sched::InterleavedSchedule::from_periodic(
        sched::PeriodicSchedule({1, 1}));
    const auto res = core::interleaved_search(ev, start, iopts);
    print_result(args, res.found ? res.best.to_string() : "-",
                 res.best_evaluation.pall, res.found, res.unique_evaluations,
                 res.telemetry.stop, res.telemetry.resumed, res.telemetry.used_fallback,
                 res.telemetry.checkpoints_written);
    return 0;
  }

  opt::HybridOptions hopts;
  hopts.max_value = 6;
  hopts.anytime.budget = &budget;
  hopts.anytime.checkpoint_path = args.checkpoint;
  hopts.anytime.checkpoint_every = args.checkpoint_every;
  hopts.anytime.fault = args.corrupt_at_save > 0 ? &fault : nullptr;

  if (args.search == "exhaustive") {
    const auto res = core::exhaustive_codesign(ev, hopts);
    print_result(args, res.found ? res.best_schedule.to_string() : "-",
                 res.best_evaluation.pall, res.found,
                 res.details.unique_evaluations, res.details.telemetry.stop,
                 res.details.telemetry.resumed, res.details.telemetry.used_fallback,
                 res.details.telemetry.checkpoints_written);
    return 0;
  }

  const auto res =
      core::find_optimal_schedule(ev, {{1, 1}, {4, 4}, {1, 6}}, hopts);
  print_result(args, res.found ? res.best_schedule.to_string() : "-",
               res.best_evaluation.pall, res.found, res.schedules_evaluated,
               res.search.telemetry.stop, res.search.telemetry.resumed, res.search.telemetry.used_fallback,
               res.search.telemetry.checkpoints_written);
  return 0;
}
